(* Facade: compile NPC source to IR thread programs. *)

type error =
  | Lex_error of { pos : Ast.pos; message : string }
  | Parse_error of { pos : Ast.pos; message : string }
  | Sema_errors of Sema.error list

let pp_error ppf = function
  | Lex_error { pos; message } | Parse_error { pos; message } ->
    Fmt.pf ppf "%d:%d: %s" pos.Ast.line pos.Ast.col message
  | Sema_errors errs -> Fmt.(list ~sep:(any "@.") Sema.pp_error) ppf errs

let parse src =
  match Nparser.parse src with
  | ast -> Ok ast
  | exception Nlexer.Error { pos; message } -> Error (Lex_error { pos; message })
  | exception Nparser.Error { pos; message } ->
    Error (Parse_error { pos; message })

let compile src =
  match parse src with
  | Error e -> Error e
  | Ok ast -> (
    match Sema.check ast with
    | [] -> Ok (Lower.lower ast)
    | errs -> Error (Sema_errors errs))

let compile_exn src =
  match compile src with
  | Ok progs -> progs
  | Error e -> Fmt.failwith "npc: %a" pp_error e
