(** Live-range web renaming.

    Splits every virtual register into its connected live-range components
    ("webs") and renames each component to its own register, establishing
    the allocator's invariant that one register is one live range. The web
    containing the register's first live gap keeps the original number. *)

open Npra_ir

val rename : Prog.t -> Prog.t
