lib/cfg/liveness.ml: Array Fmt Instr List Npra_ir Prog Queue Reg
