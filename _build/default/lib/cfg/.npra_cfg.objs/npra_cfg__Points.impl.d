lib/cfg/points.ml: Array Instr Int List Liveness Npra_ir Prog Reg Set
