lib/cfg/block.mli: Npra_ir Prog
