lib/cfg/loops.ml: Array Block Fun Int List Npra_ir Set
