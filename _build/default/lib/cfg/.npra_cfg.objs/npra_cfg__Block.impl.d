lib/cfg/block.ml: Array Instr Int List Npra_ir Prog
