lib/cfg/webs.ml: Array Dsu Hashtbl Instr List Npra_ir Points Prog Reg
