lib/cfg/points.mli: Liveness Npra_ir Prog Reg Set
