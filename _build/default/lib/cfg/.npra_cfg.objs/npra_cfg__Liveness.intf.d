lib/cfg/liveness.mli: Fmt Npra_ir Prog Reg
