lib/cfg/loops.mli: Npra_ir Prog
