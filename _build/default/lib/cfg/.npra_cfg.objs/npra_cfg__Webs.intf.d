lib/cfg/webs.mli: Npra_ir Prog
