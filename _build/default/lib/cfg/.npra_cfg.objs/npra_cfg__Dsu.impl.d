lib/cfg/dsu.ml: Array
