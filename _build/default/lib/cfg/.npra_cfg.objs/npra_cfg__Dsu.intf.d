lib/cfg/dsu.mli:
