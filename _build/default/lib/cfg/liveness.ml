(* Instruction-level backward liveness analysis.

   Computed with a classic worklist fixpoint over the instruction successor
   relation. Programs in this code base are a few hundred to a few thousand
   instructions, so set-based dataflow is more than fast enough. *)

open Npra_ir

type t = {
  prog : Prog.t;
  live_in : Reg.Set.t array;
  live_out : Reg.Set.t array;
}

let compute prog =
  let n = Prog.length prog in
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  let preds = Prog.preds prog in
  let on_worklist = Array.make n true in
  let worklist = Queue.create () in
  (* Seed in reverse order so information propagates backward quickly. *)
  for i = n - 1 downto 0 do
    Queue.add i worklist
  done;
  let uses = Array.init n (fun i -> Reg.Set.of_list (Instr.uses (Prog.instr prog i))) in
  let defs = Array.init n (fun i -> Reg.Set.of_list (Instr.defs (Prog.instr prog i))) in
  while not (Queue.is_empty worklist) do
    let i = Queue.pop worklist in
    on_worklist.(i) <- false;
    let out =
      List.fold_left
        (fun acc s -> Reg.Set.union acc live_in.(s))
        Reg.Set.empty (Prog.succs prog i)
    in
    let inn = Reg.Set.union uses.(i) (Reg.Set.diff out defs.(i)) in
    live_out.(i) <- out;
    if not (Reg.Set.equal inn live_in.(i)) then begin
      live_in.(i) <- inn;
      List.iter
        (fun p ->
          if not on_worklist.(p) then begin
            on_worklist.(p) <- true;
            Queue.add p worklist
          end)
        preds.(i)
    end
  done;
  { prog; live_in; live_out }

let live_in t i = t.live_in.(i)
let live_out t i = t.live_out.(i)

let live_across t i =
  (* Values that survive instruction [i]'s context-switch boundary. The
     destination of a load is written back only after the thread resumes,
     so it is excluded (the paper's transfer-register rule). *)
  let defs = Reg.Set.of_list (Instr.defs (Prog.instr t.prog i)) in
  Reg.Set.diff t.live_out.(i) defs

let pp ppf t =
  let n = Prog.length t.prog in
  for i = 0 to n - 1 do
    Fmt.pf ppf "%3d %-30s in={%a} out={%a}@." i
      (Instr.to_string (Prog.instr t.prog i))
      Fmt.(list ~sep:comma Reg.pp)
      (Reg.Set.elements t.live_in.(i))
      Fmt.(list ~sep:comma Reg.pp)
      (Reg.Set.elements t.live_out.(i))
  done
