(* Live-range web renaming.

   The allocator assumes each virtual register is a single connected live
   range (the paper's "each live range represents one variable"). A source
   program may reuse one virtual register for several disjoint ranges;
   this pass splits every register into its connected components over the
   gap graph and renames each component ("web") to its own register.

   The web containing the register's first gap keeps the original number,
   so programs that are already in web form come back unchanged. *)

open Npra_ir
module IntSet = Points.IntSet

type renaming = {
  (* per original register: gap -> web representative gap *)
  web_of_gap : (Reg.t * int, Reg.t) Hashtbl.t;
}

let compute_renaming prog =
  let pts = Points.compute prog in
  let next = ref (Prog.max_vreg prog + 1) in
  let web_of_gap = Hashtbl.create 64 in
  let vregs = Reg.Set.filter Reg.is_virtual (Prog.regs prog) in
  Reg.Set.iter
    (fun v ->
      let gaps = Points.gaps_of pts v in
      if not (IntSet.is_empty gaps) then begin
        let gap_list = IntSet.elements gaps in
        let index = Hashtbl.create 16 in
        List.iteri (fun i p -> Hashtbl.add index p i) gap_list;
        let dsu = Dsu.create (List.length gap_list) in
        List.iter
          (fun (p, q) ->
            match Hashtbl.find_opt index p, Hashtbl.find_opt index q with
            | Some a, Some b -> Dsu.union dsu a b
            | _ -> ())
          (Points.gap_edges pts);
        (* Assign a register per component; the component of the first gap
           keeps the original register. *)
        let first_root = Dsu.find dsu 0 in
        let reg_of_root = Hashtbl.create 4 in
        Hashtbl.add reg_of_root first_root v;
        List.iteri
          (fun i p ->
            let root = Dsu.find dsu i in
            let r =
              match Hashtbl.find_opt reg_of_root root with
              | Some r -> r
              | None ->
                let r = Reg.V !next in
                incr next;
                Hashtbl.add reg_of_root root r;
                r
            in
            Hashtbl.add web_of_gap (v, p) r)
          gap_list
      end)
    vregs;
  { web_of_gap }

let rename prog =
  let { web_of_gap } = compute_renaming prog in
  let subst occ_gap r =
    if Reg.is_virtual r then
      match Hashtbl.find_opt web_of_gap (r, occ_gap) with
      | Some r' -> r'
      | None -> r
    else r
  in
  let code =
    Array.mapi
      (fun i ins ->
        (* A use of [r] at instruction [i] reads the web live at gap [i];
           a definition writes the web live at gap [i+1]. *)
        Instr.map_regs2 ~use:(subst i) ~def:(subst (i + 1)) ins)
      prog.Prog.code
  in
  Prog.of_array ~name:prog.Prog.name ~code ~labels:prog.Prog.labels
