(* Basic blocks over the instruction array.

   Leaders are the entry instruction, every branch target, and every
   instruction following a branch or halt. Blocks are half-open index
   ranges [first, last]. Used for program statistics and for the loop
   nesting analysis behind spill-cost estimation. *)

open Npra_ir

type block = { id : int; first : int; last : int }

type t = {
  prog : Prog.t;
  blocks : block array;
  block_of_instr : int array;
}

let compute prog =
  let n = Prog.length prog in
  let leader = Array.make n false in
  leader.(0) <- true;
  for i = 0 to n - 1 do
    let ins = Prog.instr prog i in
    (match Instr.branch_target ins with
    | Some l -> leader.(Prog.label_index prog l) <- true
    | None -> ());
    if (Instr.is_branch ins || not (Instr.falls_through ins)) && i + 1 < n
    then leader.(i + 1) <- true
  done;
  let blocks = ref [] in
  let start = ref 0 in
  for i = 1 to n - 1 do
    if leader.(i) then begin
      blocks := (!start, i - 1) :: !blocks;
      start := i
    end
  done;
  blocks := (!start, n - 1) :: !blocks;
  let blocks =
    List.rev !blocks
    |> List.mapi (fun id (first, last) -> { id; first; last })
    |> Array.of_list
  in
  let block_of_instr = Array.make n 0 in
  Array.iter
    (fun b ->
      for i = b.first to b.last do
        block_of_instr.(i) <- b.id
      done)
    blocks;
  { prog; blocks; block_of_instr }

let blocks t = t.blocks
let num_blocks t = Array.length t.blocks
let block_of_instr t i = t.block_of_instr.(i)

let succs t b =
  let blk = t.blocks.(b) in
  Prog.succs t.prog blk.last
  |> List.map (fun i -> t.block_of_instr.(i))
  |> List.sort_uniq Int.compare

let preds t =
  let p = Array.make (num_blocks t) [] in
  for b = 0 to num_blocks t - 1 do
    List.iter (fun s -> p.(s) <- b :: p.(s)) (succs t b)
  done;
  p
