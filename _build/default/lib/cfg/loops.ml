(* Natural-loop nesting depth.

   Dominators are computed with the simple iterative dataflow algorithm
   over basic blocks; a back edge [b -> h] (where [h] dominates [b])
   yields the natural loop of [h], and an instruction's depth is the
   number of loops containing its block. Spill-cost heuristics weight
   uses by [10^depth]. *)

module IntSet = Set.Make (Int)

type t = { depth_of_instr : int array }

let compute prog =
  let blk = Block.compute prog in
  let nb = Block.num_blocks blk in
  let preds = Block.preds blk in
  (* Iterative dominator analysis: dom(0) = {0}; dom(b) = {b} ∪ ⋂ dom(preds). *)
  let all = List.init nb Fun.id |> IntSet.of_list in
  let dom = Array.make nb all in
  dom.(0) <- IntSet.singleton 0;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to nb - 1 do
      let inter =
        match preds.(b) with
        | [] -> IntSet.empty
        | p :: ps ->
          List.fold_left (fun acc q -> IntSet.inter acc dom.(q)) dom.(p) ps
      in
      let d = IntSet.add b inter in
      if not (IntSet.equal d dom.(b)) then begin
        dom.(b) <- d;
        changed := true
      end
    done
  done;
  (* Natural loops from back edges. *)
  let depth = Array.make nb 0 in
  for b = 0 to nb - 1 do
    List.iter
      (fun h ->
        if IntSet.mem h dom.(b) then begin
          (* back edge b -> h: collect the natural loop body *)
          let body = ref (IntSet.of_list [ h; b ]) in
          let stack = ref (if b = h then [] else [ b ]) in
          let rec walk () =
            match !stack with
            | [] -> ()
            | x :: rest ->
              stack := rest;
              List.iter
                (fun p ->
                  if not (IntSet.mem p !body) then begin
                    body := IntSet.add p !body;
                    stack := p :: !stack
                  end)
                preds.(x);
              walk ()
          in
          walk ();
          IntSet.iter (fun x -> depth.(x) <- depth.(x) + 1) !body
        end)
      (Block.succs blk b)
  done;
  let n = Npra_ir.Prog.length prog in
  let depth_of_instr =
    Array.init n (fun i -> depth.(Block.block_of_instr blk i))
  in
  { depth_of_instr }

let depth t i = t.depth_of_instr.(i)
