(** Instruction-level backward liveness analysis. *)

open Npra_ir

type t

val compute : Prog.t -> t

val live_in : t -> int -> Reg.Set.t
(** Registers live on entry to instruction [i]. *)

val live_out : t -> int -> Reg.Set.t
(** Registers live on exit from instruction [i]. *)

val live_across : t -> int -> Reg.Set.t
(** Registers whose values survive instruction [i]'s context-switch
    boundary: [live_out i] minus [i]'s definitions. Meaningful when
    [Instr.causes_ctx_switch] holds for [i]; a load's destination is
    excluded per the transfer-register rule. *)

val pp : t Fmt.t
