(* Program points and point-set liveness algebra.

   The unit of reasoning for live-range splitting is the "gap": gap [p] is
   the program point immediately before instruction [p], for [p] in
   [0 .. n] (gap [n] is past the end). A register [v] is live at gap [p]
   when it is live on entry to instruction [p], or when instruction [p-1]
   just defined it (a dead definition still occupies a register at the
   point after the defining instruction).

   Executing instruction [p] moves control from gap [p] to gap [q] for
   each successor [q]; these gap edges [(p, q)] are where split moves can
   be materialised.

   A context-switch boundary (CSB) lives inside its causing instruction
   [c]: the values that survive it are [live_out(c) \ defs(c)]; each such
   value is live at both gap [c] and gap [c+1], and by convention the live
   range segment containing gap [c] "owns" the crossing. *)

open Npra_ir
module IntSet = Set.Make (Int)

type t = {
  prog : Prog.t;
  live : Liveness.t;
  n : int;
  live_at_gap : Reg.Set.t array;  (* length n+1 *)
  gaps_of : IntSet.t Reg.Map.t;
  across : Reg.Set.t array;  (* per instruction; empty unless CSB *)
  csb_points : int list;  (* CSB instruction indices, program order *)
  csbs_of : IntSet.t Reg.Map.t;
  edges : (int * int) list;  (* gap edges *)
}

let compute prog =
  let live = Liveness.compute prog in
  let n = Prog.length prog in
  let live_at_gap = Array.make (n + 1) Reg.Set.empty in
  for p = 0 to n - 1 do
    live_at_gap.(p) <- Liveness.live_in live p
  done;
  for p = 1 to n do
    let defs = Reg.Set.of_list (Instr.defs (Prog.instr prog (p - 1))) in
    live_at_gap.(p) <- Reg.Set.union live_at_gap.(p) defs
  done;
  let gaps_of = ref Reg.Map.empty in
  Array.iteri
    (fun p regs ->
      Reg.Set.iter
        (fun r ->
          gaps_of :=
            Reg.Map.update r
              (function
                | None -> Some (IntSet.singleton p)
                | Some s -> Some (IntSet.add p s))
              !gaps_of)
        regs)
    live_at_gap;
  let across = Array.make n Reg.Set.empty in
  let csb_points = ref [] in
  for i = n - 1 downto 0 do
    if Instr.causes_ctx_switch (Prog.instr prog i) then begin
      across.(i) <- Liveness.live_across live i;
      csb_points := i :: !csb_points
    end
  done;
  let csbs_of = ref Reg.Map.empty in
  List.iter
    (fun c ->
      Reg.Set.iter
        (fun r ->
          csbs_of :=
            Reg.Map.update r
              (function
                | None -> Some (IntSet.singleton c)
                | Some s -> Some (IntSet.add c s))
              !csbs_of)
        across.(c))
    !csb_points;
  let edges =
    Prog.fold_instrs
      (fun acc i ins ->
        let acc = if Instr.falls_through ins then (i, i + 1) :: acc else acc in
        match Instr.branch_target ins with
        | Some l ->
          let j = Prog.label_index prog l in
          if Instr.falls_through ins && j = i + 1 then acc else (i, j) :: acc
        | None -> acc)
      [] prog
    |> List.rev
  in
  {
    prog;
    live;
    n;
    live_at_gap;
    gaps_of = !gaps_of;
    across;
    csb_points = !csb_points;
    csbs_of = !csbs_of;
    edges;
  }

let liveness t = t.live
let num_gaps t = t.n + 1
let live_at_gap t p = t.live_at_gap.(p)

let gaps_of t r =
  match Reg.Map.find_opt r t.gaps_of with
  | Some s -> s
  | None -> IntSet.empty

let csbs_of t r =
  match Reg.Map.find_opt r t.csbs_of with
  | Some s -> s
  | None -> IntSet.empty

let across t i = t.across.(i)
let csb_points t = t.csb_points
let gap_edges t = t.edges

let gap_edges_of t r =
  let gaps = gaps_of t r in
  List.filter (fun (p, q) -> IntSet.mem p gaps && IntSet.mem q gaps) t.edges

let reg_pressure_max t =
  Array.fold_left (fun acc s -> max acc (Reg.Set.cardinal s)) 0 t.live_at_gap

let reg_pressure_csb_max t =
  List.fold_left
    (fun acc c -> max acc (Reg.Set.cardinal t.across.(c)))
    0 t.csb_points

let is_boundary t r = not (IntSet.is_empty (csbs_of t r))
