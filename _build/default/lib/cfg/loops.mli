(** Natural-loop nesting depth per instruction, for spill-cost weighting. *)

open Npra_ir

type t

val compute : Prog.t -> t

val depth : t -> int -> int
(** Number of natural loops containing instruction [i]. *)
