(* Union-find (disjoint-set union) over a fixed integer universe, with
   path compression. Small utility shared by web renaming and non-switch
   region construction. *)

type t = int array

let create n = Array.init n (fun i -> i)

let rec find t x =
  if t.(x) = x then x
  else begin
    t.(x) <- find t t.(x);
    t.(x)
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx <> ry then t.(ry) <- rx

let same t x y = find t x = find t y
