(** Basic blocks over the instruction array.

    Leaders are the entry instruction, every branch target, and every
    instruction following a branch or halt. *)

open Npra_ir

type block = { id : int; first : int; last : int }

type t

val compute : Prog.t -> t
val blocks : t -> block array
val num_blocks : t -> int
val block_of_instr : t -> int -> int
val succs : t -> int -> int list
val preds : t -> int list array
