(** Union-find (disjoint-set union) over the universe [0 .. n-1]. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool
