lib/opt/dce.ml: Array Instr List Liveness Npra_cfg Npra_ir Prog Reg
