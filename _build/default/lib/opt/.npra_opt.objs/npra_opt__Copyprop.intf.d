lib/opt/copyprop.mli: Npra_ir Prog
