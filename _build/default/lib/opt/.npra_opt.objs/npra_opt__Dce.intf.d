lib/opt/dce.mli: Npra_ir Prog
