lib/opt/opt.mli: Fmt Npra_ir Prog
