lib/opt/opt.ml: Copyprop Dce Fmt
