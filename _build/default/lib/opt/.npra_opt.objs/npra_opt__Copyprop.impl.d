lib/opt/copyprop.ml: Array Fun Instr List Npra_ir Prog Reg Set
