(* Optimisation driver: copy propagation and dead-code elimination to a
   combined fixed point. Used to clean frontend output before allocation
   and residual split moves after it. *)

type stats = { copies_propagated : int; instructions_removed : int }

let pp_stats ppf s =
  Fmt.pf ppf "%d copies propagated, %d instructions removed"
    s.copies_propagated s.instructions_removed

let run prog =
  (* the fuel is belt and braces: each pass is monotone, but stopping an
     optimiser early is always sound *)
  let rec go fuel prog acc =
    let prog, copies = Copyprop.run prog in
    let prog, removed = Dce.run prog in
    let acc =
      {
        copies_propagated = acc.copies_propagated + copies;
        instructions_removed = acc.instructions_removed + removed;
      }
    in
    if (copies = 0 && removed = 0) || fuel = 0 then (prog, acc)
    else go (fuel - 1) prog acc
  in
  go 32 prog { copies_propagated = 0; instructions_removed = 0 }

let clean prog = fst (run prog)
