(* Dead-code elimination.

   An instruction is dead when it has no effect: it only defines
   registers that are not live out of it, and it cannot fault or switch
   context (loads are preserved — on this machine a load is a
   context-switch point and its timing is part of the program's
   behaviour; stores, branches and ctx_switch are obviously kept).

   Deletion changes liveness, so the pass iterates to a fixed point.
   Labels are remapped onto the surviving instructions. *)

open Npra_ir
open Npra_cfg

let removable ins live_out =
  match ins with
  | Instr.Alu { dst; _ } | Instr.Mov { dst; _ } | Instr.Movi { dst; _ } ->
    not (Reg.Set.mem dst live_out)
  | Instr.Nop -> true
  | Instr.Load _ | Instr.Store _ | Instr.Br _ | Instr.Brc _
  | Instr.Ctx_switch | Instr.Halt ->
    false

let run_once prog =
  let live = Liveness.compute prog in
  let n = Prog.length prog in
  let keep = Array.make n true in
  let removed = ref 0 in
  for i = 0 to n - 1 do
    if removable (Prog.instr prog i) (Liveness.live_out live i) then begin
      keep.(i) <- false;
      incr removed
    end
  done;
  if !removed = 0 then (prog, 0)
  else begin
    (* new index of each old instruction (dead ones map to the next
       surviving one, so labels stay attached to the right place) *)
    let new_index = Array.make (n + 1) 0 in
    let count = ref 0 in
    for i = 0 to n - 1 do
      new_index.(i) <- !count;
      if keep.(i) then incr count
    done;
    new_index.(n) <- !count;
    let code =
      Array.of_list
        (List.filteri (fun i _ -> keep.(i)) (Array.to_list prog.Prog.code))
    in
    let labels =
      List.map (fun (l, i) -> (l, new_index.(i))) prog.Prog.labels
    in
    (Prog.of_array ~name:prog.Prog.name ~code ~labels, !removed)
  end

let run prog =
  let rec go prog total =
    let prog', removed = run_once prog in
    if removed = 0 then (prog, total) else go prog' (total + removed)
  in
  go prog 0
