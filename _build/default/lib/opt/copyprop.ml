(* Copy propagation.

   A classic forward dataflow over available copies: after [mov d, s]
   the pair (d, s) is available until either side is redefined; a use of
   [d] can then read [s] directly. Propagation frequently turns the
   allocator's split moves and the frontend's variable copies into dead
   code, which {!Dce} removes.

   The analysis runs at instruction granularity with a may-kill join
   (intersection over predecessors), the standard formulation. Works on
   virtual or physical programs — the pass is used both before allocation
   (cleaning frontend output) and after (cleaning residual moves). *)

open Npra_ir

module CopySet = Set.Make (struct
  type t = Reg.t * Reg.t

  let compare (a1, b1) (a2, b2) =
    match Reg.compare a1 a2 with 0 -> Reg.compare b1 b2 | c -> c
end)

(* copies killed by defining [r]: any pair mentioning it *)
let kill r set =
  CopySet.filter
    (fun (d, s) -> not (Reg.equal d r || Reg.equal s r))
    set

let transfer ins set =
  let set = List.fold_left (fun acc d -> kill d acc) set (Instr.defs ins) in
  match ins with
  | Instr.Mov { dst; src } when not (Reg.equal dst src) ->
    CopySet.add (dst, src) set
  | _ -> set

(* [None] represents "all copies" (top, for unreached blocks). *)
let meet a b =
  match a, b with
  | None, x | x, None -> x
  | Some a, Some b -> Some (CopySet.inter a b)

(* NB: structural (polymorphic) equality is wrong for balanced-tree sets
   — equal sets can differ in shape, which would keep the fixpoint
   "changing" forever. *)
let value_equal a b =
  match a, b with
  | None, None -> true
  | Some a, Some b -> CopySet.equal a b
  | None, Some _ | Some _, None -> false

let analyze prog =
  let n = Prog.length prog in
  let preds = Prog.preds prog in
  let inn = Array.make n None in
  inn.(0) <- Some CopySet.empty;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let from_preds =
        List.fold_left
          (fun acc p ->
            let out =
              match inn.(p) with
              | None -> None
              | Some set -> Some (transfer (Prog.instr prog p) set)
            in
            meet acc out)
          None preds.(i)
      in
      let v = if i = 0 then Some CopySet.empty else from_preds in
      if not (value_equal v inn.(i)) then begin
        inn.(i) <- v;
        changed := true
      end
    done
  done;
  inn

let run prog =
  let inn = analyze prog in
  let rewritten = ref 0 in
  let code =
    Array.mapi
      (fun i ins ->
        match inn.(i) with
        | None -> ins
        | Some copies ->
          let lookup r =
            CopySet.fold
              (fun (d, s) acc ->
                if acc = None && Reg.equal d r then Some s else acc)
              copies None
          in
          (* chase copy chains (v2 <- v1 <- v0 reads v0 directly); the
             kill rule makes cycles impossible, the fuel is belt and
             braces *)
          let subst r =
            let rec chase r fuel =
              if fuel = 0 then r
              else match lookup r with Some s -> chase s (fuel - 1) | None -> r
            in
            let r' = chase r (CopySet.cardinal copies) in
            if not (Reg.equal r r') then incr rewritten;
            r'
          in
          Instr.map_regs2 ~def:Fun.id ~use:subst ins)
      prog.Prog.code
  in
  ( Prog.of_array ~name:prog.Prog.name ~code ~labels:prog.Prog.labels,
    !rewritten )
