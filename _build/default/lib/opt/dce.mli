(** Dead-code elimination: removes pure instructions whose definitions
    are not live out, iterating to a fixed point. Memory operations,
    branches and context switches are always preserved (on this machine
    a load's context switch is part of the program's behaviour). *)

open Npra_ir

val run : Prog.t -> Prog.t * int
(** Returns the cleaned program and the number of instructions removed. *)
