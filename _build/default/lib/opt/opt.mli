(** Optimisation driver: copy propagation + dead-code elimination to a
    combined fixed point. *)

open Npra_ir

type stats = { copies_propagated : int; instructions_removed : int }

val pp_stats : stats Fmt.t

val run : Prog.t -> Prog.t * stats
val clean : Prog.t -> Prog.t
