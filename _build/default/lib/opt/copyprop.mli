(** Copy propagation: forward available-copies dataflow; uses of a copy
    destination are rewritten to read the source directly, exposing the
    copy to dead-code elimination. *)

open Npra_ir

val run : Prog.t -> Prog.t * int
(** Returns the rewritten program and the number of uses rewritten. *)
