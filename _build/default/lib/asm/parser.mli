(** Recursive-descent parser for the NPRA assembly language.

    A file holds one or more thread sections, each opened by a
    [.thread NAME] directive (a directive-free file is one anonymous
    thread). The grammar accepts exactly what {!Printer} emits. *)

open Npra_ir

exception Error of { line : int; message : string }

val parse : string -> Prog.t list
(** @raise Error on lexical/syntactic problems or invalid programs. *)

val parse_one : string -> Prog.t
(** @raise Error unless the source holds exactly one thread. *)
