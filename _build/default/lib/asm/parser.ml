(* Recursive-descent parser for the NPRA assembly language.

   A file holds one or more thread sections, each opened by a [.thread
   NAME] directive (a file without any directive is a single anonymous
   thread). Within a section: labels ([name:]) and instructions, one per
   line. The grammar accepts exactly what {!Printer} emits, giving a
   round-trip property the tests rely on. *)

open Npra_ir

exception Error of { line : int; message : string }

let error line fmt = Fmt.kstr (fun message -> raise (Error { line; message })) fmt

type state = { mutable toks : Lexer.lexeme list }

let peek st =
  match st.toks with [] -> assert false | l :: _ -> l

let advance st =
  match st.toks with [] -> assert false | _ :: rest -> st.toks <- rest

let next st =
  let l = peek st in
  advance st;
  l

let expect st tok what =
  let l = next st in
  if l.Lexer.token <> tok then error l.Lexer.line "expected %s" what

let expect_reg st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.REG r -> r
  | _ -> error l.Lexer.line "expected a register"

let expect_int st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.INT n -> n
  | _ -> error l.Lexer.line "expected an integer"

let expect_ident st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.IDENT s -> s
  | _ -> error l.Lexer.line "expected an identifier"

let expect_operand st =
  let l = next st in
  match l.Lexer.token with
  | Lexer.REG r -> Instr.Reg r
  | Lexer.INT n -> Instr.Imm n
  | _ -> error l.Lexer.line "expected a register or integer"

let expect_comma st = expect st Lexer.COMMA "','"

(* [dst, [addr+off]] with the offset optional. *)
let expect_mem st =
  expect st Lexer.LBRACKET "'['";
  let addr = expect_reg st in
  let l = peek st in
  let off =
    match l.Lexer.token with
    | Lexer.PLUS ->
      advance st;
      expect_int st
    | _ -> 0
  in
  expect st Lexer.RBRACKET "']'";
  (addr, off)

let alu_of_name = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "shr" -> Some Instr.Shr
  | "mul" -> Some Instr.Mul
  | _ -> None

let cond_of_name = function
  | "beq" -> Some Instr.Eq
  | "bne" -> Some Instr.Ne
  | "blt" -> Some Instr.Lt
  | "bge" -> Some Instr.Ge
  | "bgt" -> Some Instr.Gt
  | "ble" -> Some Instr.Le
  | _ -> None

let parse_instr st line mnemonic =
  match alu_of_name mnemonic, cond_of_name mnemonic, mnemonic with
  | Some op, _, _ ->
    let dst = expect_reg st in
    expect_comma st;
    let src1 = expect_reg st in
    expect_comma st;
    let src2 = expect_operand st in
    Instr.Alu { op; dst; src1; src2 }
  | None, Some cond, _ ->
    let src1 = expect_reg st in
    expect_comma st;
    let src2 = expect_operand st in
    expect_comma st;
    let target = expect_ident st in
    Instr.Brc { cond; src1; src2; target }
  | None, None, "mov" ->
    let dst = expect_reg st in
    expect_comma st;
    let src = expect_reg st in
    Instr.Mov { dst; src }
  | None, None, "movi" ->
    let dst = expect_reg st in
    expect_comma st;
    let imm = expect_int st in
    Instr.Movi { dst; imm }
  | None, None, "load" ->
    let dst = expect_reg st in
    expect_comma st;
    let addr, off = expect_mem st in
    Instr.Load { dst; addr; off }
  | None, None, "store" ->
    let src = expect_reg st in
    expect_comma st;
    let addr, off = expect_mem st in
    Instr.Store { src; addr; off }
  | None, None, "br" -> Instr.Br { target = expect_ident st }
  | None, None, "ctx_switch" -> Instr.Ctx_switch
  | None, None, "nop" -> Instr.Nop
  | None, None, "halt" -> Instr.Halt
  | None, None, other -> error line "unknown mnemonic %S" other

type section = {
  name : string;
  mutable rev_code : Instr.t list;
  mutable count : int;
  mutable labels : (string * int) list;
}

let parse_sections st =
  let sections = ref [] in
  let current = ref None in
  let section line =
    match !current with
    | Some s -> s
    | None ->
      let s = { name = "main"; rev_code = []; count = 0; labels = [] } in
      current := Some s;
      ignore line;
      s
  in
  let close () =
    match !current with
    | Some s ->
      sections := s :: !sections;
      current := None
    | None -> ()
  in
  let rec loop () =
    let l = peek st in
    match l.Lexer.token with
    | Lexer.EOF -> close ()
    | Lexer.NEWLINE ->
      advance st;
      loop ()
    | Lexer.DIRECTIVE "thread" ->
      advance st;
      let name = expect_ident st in
      close ();
      current := Some { name; rev_code = []; count = 0; labels = [] };
      loop ()
    | Lexer.DIRECTIVE d -> error l.Lexer.line "unknown directive .%s" d
    | Lexer.IDENT id -> (
      advance st;
      match (peek st).Lexer.token with
      | Lexer.COLON ->
        advance st;
        let s = section l.Lexer.line in
        s.labels <- (id, s.count) :: s.labels;
        loop ()
      | _ ->
        let s = section l.Lexer.line in
        let ins = parse_instr st l.Lexer.line id in
        s.rev_code <- ins :: s.rev_code;
        s.count <- s.count + 1;
        (match (peek st).Lexer.token with
        | Lexer.NEWLINE | Lexer.EOF -> ()
        | _ -> error l.Lexer.line "trailing tokens after instruction");
        loop ())
    | _ -> error l.Lexer.line "expected a label, mnemonic or directive"
  in
  loop ();
  List.rev !sections

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let sections = parse_sections st in
  List.map
    (fun s ->
      try Prog.make ~name:s.name ~code:(List.rev s.rev_code) ~labels:s.labels
      with Prog.Invalid m -> error 0 "%s" m)
    sections

let parse_one src =
  match parse src with
  | [ p ] -> p
  | ps -> error 0 "expected exactly one thread section, found %d" (List.length ps)
