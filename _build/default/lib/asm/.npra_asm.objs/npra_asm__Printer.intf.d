lib/asm/printer.mli: Fmt Instr Npra_ir Prog
