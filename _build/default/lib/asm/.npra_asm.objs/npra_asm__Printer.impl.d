lib/asm/printer.ml: Array Fmt Instr List Npra_ir Prog Reg String
