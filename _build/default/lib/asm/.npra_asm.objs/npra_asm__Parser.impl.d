lib/asm/parser.ml: Fmt Instr Lexer List Npra_ir Prog
