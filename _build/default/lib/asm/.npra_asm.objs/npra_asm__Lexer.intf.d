lib/asm/lexer.mli: Npra_ir
