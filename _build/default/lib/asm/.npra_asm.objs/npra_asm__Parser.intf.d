lib/asm/parser.mli: Npra_ir Prog
