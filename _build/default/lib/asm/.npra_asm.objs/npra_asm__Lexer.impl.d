lib/asm/lexer.ml: Fmt List Npra_ir String
