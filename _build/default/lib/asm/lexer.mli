(** Lexer for the NPRA assembly language. Comments run from [';'] or
    ['#'] to end of line; tokens carry their source line. *)

type token =
  | IDENT of string
  | REG of Npra_ir.Reg.t
  | INT of int
  | COMMA
  | COLON
  | LBRACKET
  | RBRACKET
  | PLUS
  | DIRECTIVE of string
  | NEWLINE
  | EOF

type lexeme = { token : token; line : int }

exception Error of { line : int; message : string }

val tokenize : string -> lexeme list
