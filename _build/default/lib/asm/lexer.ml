(* Lexer for the NPRA assembly language.

   The surface syntax mirrors the printer in {!Npra_ir.Instr}:

     .thread checksum
     entry:
       movi v0, 0
       load v1, [v2+4]
       add v0, v0, v1
       bne v0, 0, entry
       ctx_switch
       halt

   Tokens carry their line number for error reporting. Comments run from
   ';' or '#' to the end of the line. *)

type token =
  | IDENT of string  (* mnemonics, label names *)
  | REG of Npra_ir.Reg.t
  | INT of int
  | COMMA
  | COLON
  | LBRACKET
  | RBRACKET
  | PLUS
  | DIRECTIVE of string  (* .thread etc. *)
  | NEWLINE
  | EOF

type lexeme = { token : token; line : int }

exception Error of { line : int; message : string }

let error line fmt = Fmt.kstr (fun message -> raise (Error { line; message })) fmt

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c || c = '.'

(* A register token is [v<digits>] or [r<digits>]; anything else
   alphanumeric is an identifier. *)
let classify_word w =
  let is_reg prefix =
    String.length w > 1
    && w.[0] = prefix
    && String.for_all is_digit (String.sub w 1 (String.length w - 1))
  in
  if is_reg 'v' then REG (Npra_ir.Reg.V (int_of_string (String.sub w 1 (String.length w - 1))))
  else if is_reg 'r' then
    REG (Npra_ir.Reg.P (int_of_string (String.sub w 1 (String.length w - 1))))
  else IDENT w

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let push token = out := { token; line = !line } :: !out in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      push NEWLINE;
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' || c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = ',' then begin
      push COMMA;
      incr i
    end
    else if c = ':' then begin
      push COLON;
      incr i
    end
    else if c = '[' then begin
      push LBRACKET;
      incr i
    end
    else if c = ']' then begin
      push RBRACKET;
      incr i
    end
    else if c = '+' then begin
      push PLUS;
      incr i
    end
    else if c = '-' || is_digit c then begin
      let start = !i in
      incr i;
      while !i < n && (is_digit src.[!i] || src.[!i] = 'x' || src.[!i] = 'X'
                       || (src.[!i] >= 'a' && src.[!i] <= 'f')
                       || (src.[!i] >= 'A' && src.[!i] <= 'F'))
      do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v -> push (INT v)
      | None -> error !line "malformed integer %S" text
    end
    else if c = '.' then begin
      let start = !i in
      incr i;
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (DIRECTIVE (String.sub src (start + 1) (!i - start - 1)))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (classify_word (String.sub src start (!i - start)))
    end
    else error !line "unexpected character %C" c
  done;
  push EOF;
  List.rev !out
