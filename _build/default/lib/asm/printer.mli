(** Assembly printer: emits the surface syntax accepted by {!Parser},
    giving the round-trip property [Parser.parse_one (Printer.to_string p)]
    ≡ [p]. *)

open Npra_ir

val pp_instr : Instr.t Fmt.t
val pp_prog : Prog.t Fmt.t
val to_string : Prog.t -> string
val to_string_many : Prog.t list -> string
