(* Assembly printer: emits the surface syntax accepted by {!Parser}.

   The conditional-branch mnemonic is [b<cond>] (e.g. [bne]); everything
   else matches {!Npra_ir.Instr.pp}. *)

open Npra_ir

let pp_instr ppf ins =
  match ins with
  | Instr.Brc { cond; src1; src2; target } ->
    Fmt.pf ppf "b%s %a, %a, %s" (Instr.cond_name cond) Reg.pp src1
      Instr.pp_operand src2 target
  | _ -> Instr.pp ppf ins

let pp_prog ppf prog =
  Fmt.pf ppf ".thread %s@." prog.Prog.name;
  Array.iteri
    (fun i ins ->
      List.iter (fun l -> Fmt.pf ppf "%s:@." l) (Prog.labels_at prog i);
      Fmt.pf ppf "  %a@." pp_instr ins)
    prog.Prog.code;
  List.iter
    (fun (l, j) ->
      if j = Array.length prog.Prog.code then Fmt.pf ppf "%s:@." l)
    prog.Prog.labels

let to_string prog = Fmt.str "%a" pp_prog prog

let to_string_many progs = String.concat "\n" (List.map to_string progs)
