(* Plain-text table rendering for experiment output.

   Columns are sized to their widest cell; numbers are right-aligned,
   text left-aligned. Kept dependency-free so the bench harness and CLI
   share one look. *)

type align = L | R

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  rows : string list list;
}

let make ~title ~headers ~aligns rows = { title; headers; aligns; rows }

let float1 x = if Float.is_nan x then "-" else Fmt.str "%.1f" x
let pct x = if Float.is_nan x then "-" else Fmt.str "%+.1f%%" x

let render ppf t =
  let cols = List.length t.headers in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row i)))
      (String.length (List.nth t.headers i))
      t.rows
  in
  let widths = List.init cols width in
  let pad a w s =
    let fill = String.make (max 0 (w - String.length s)) ' ' in
    match a with L -> s ^ fill | R -> fill ^ s
  in
  let line row aligns =
    String.concat "  "
      (List.map2 (fun (w, a) s -> pad a w s) (List.combine widths aligns) row)
  in
  Fmt.pf ppf "@.== %s ==@." t.title;
  Fmt.pf ppf "%s@." (line t.headers (List.map (fun _ -> L) t.headers));
  Fmt.pf ppf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Fmt.pf ppf "%s@." (line row t.aligns)) t.rows

let print t = render Fmt.stdout t
