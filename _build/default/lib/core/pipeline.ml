(* End-to-end compilation pipelines.

   [balanced] is the paper's system: web renaming, per-thread estimation,
   inter-thread balancing, physical assignment (packed private blocks +
   top shared block), move materialisation, and a from-scratch safety
   verification.

   [baseline] is the conventional system the paper compares against:
   per-thread Chaitin colouring into a fixed [Nreg/Nthd] partition with
   spill code.

   Both produce fully physical programs ready for the cycle-level
   machine; [differential] checks them against the reference executor. *)

open Npra_ir
open Npra_cfg
open Npra_regalloc
open Npra_sim

type balanced = {
  inter : Inter.t;
  layout : Assign.t;
  programs : Prog.t list;
  moves : int;
  verify_errors : Verify.error list;
}

exception Allocation_failure of string

let balanced ?(nreg = 128) progs =
  let progs = List.map Webs.rename progs in
  match Inter.allocate ~nreg progs with
  | Error (`Infeasible msg) -> raise (Allocation_failure msg)
  | Ok inter ->
    let prs =
      Array.to_list inter.Inter.threads |> List.map (fun t -> t.Inter.pr)
    in
    let layout = Assign.layout ~nreg ~prs ~sgr:inter.Inter.sgr in
    let programs =
      List.mapi
        (fun i th ->
          Rewrite.apply th.Inter.ctx
            ~reg_of_color:(Assign.reg_of_color layout ~thread:i))
        (Array.to_list inter.Inter.threads)
    in
    let verify_errors = Verify.check_system layout programs in
    {
      inter;
      layout;
      programs;
      moves = Inter.total_moves inter;
      verify_errors;
    }

type baseline = {
  results : Chaitin.result list;
  base_layout : Assign.t;
  base_programs : Prog.t list;
  spilled_ranges : int list;  (* per thread *)
}

let baseline ?(nreg = 128) ~spill_bases progs =
  let nthd = List.length progs in
  let k = nreg / nthd in
  let layout = Assign.fixed_partition ~nreg ~nthd in
  let results =
    List.map2
      (fun prog spill_base ->
        Chaitin.allocate ~k ~spill_base (Webs.rename prog))
      progs spill_bases
  in
  let programs =
    List.mapi
      (fun i r ->
        Rewrite.apply_map r.Chaitin.prog r.Chaitin.coloring
          ~reg_of_color:(Assign.reg_of_color layout ~thread:i))
      results
  in
  {
    results;
    base_layout = layout;
    base_programs = programs;
    spilled_ranges =
      List.map (fun r -> Reg.Set.cardinal r.Chaitin.spilled) results;
  }

(* Differential check: each physical program must preserve its virtual
   original's store trace, both in isolation and under multithreaded
   interleaving (shared registers make the latter the interesting case).
   [ignore_addr] filters allocator-internal traffic — the spill-area
   stores of the Chaitin baseline are not program behaviour. *)
let differential ?(ignore_addr = fun _ -> false) ~mem_image originals allocated
    =
  let filter trace = List.filter (fun (a, _) -> not (ignore_addr a)) trace in
  let expected =
    List.map (fun p -> (Refexec.run ~mem_image p).Refexec.store_trace) originals
  in
  let solo =
    List.map
      (fun p -> filter (Refexec.run ~mem_image p).Refexec.store_trace)
      allocated
  in
  let machine = Machine.run ~mem_image allocated in
  let interleaved =
    List.map
      (fun tr -> filter tr.Machine.store_trace)
      (Machine.report machine).Machine.thread_reports
  in
  List.for_all2 ( = ) expected solo && List.for_all2 ( = ) expected interleaved

let simulate ?config ~mem_image progs = Machine.run ?config ~mem_image progs

(* Cycles per main-loop iteration for each thread of a finished run. *)
let cycles_per_iteration report iters =
  List.map2
    (fun tr n ->
      match tr.Machine.completion with
      | Some c -> float_of_int c /. float_of_int n
      | None -> Float.nan)
    report.Machine.thread_reports iters
