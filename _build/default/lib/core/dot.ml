(* Graphviz export: CFG with NSR clustering, and interference graphs.

   `npra dot <kernel>` renders what the paper draws by hand in Figures
   4 and 5 — the control-flow graph carved into non-switch regions, and
   the global interference graph with boundary nodes highlighted. *)

open Npra_ir
open Npra_cfg
open Npra_regalloc

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* Control-flow graph at basic-block granularity, blocks clustered by
   the NSR of their first instruction; CSB instructions are drawn as
   diamond boundary nodes. *)
let cfg ppf prog =
  let blocks = Block.compute prog in
  let regions = Nsr.compute prog in
  Fmt.pf ppf "digraph cfg {@.";
  Fmt.pf ppf "  node [shape=box, fontname=\"monospace\", fontsize=10];@.";
  let block_label b =
    (* escape each instruction, then join with literal "\l" line breaks *)
    let buf = Buffer.create 128 in
    for i = b.Block.first to b.Block.last do
      Buffer.add_string buf
        (escape (Fmt.str "%d: %s" i (Instr.to_string (Prog.instr prog i))));
      Buffer.add_string buf "\\l"
    done;
    Buffer.contents buf
  in
  (* group blocks per region of their first instruction *)
  let by_region = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      let key =
        match Nsr.region_of_instr regions b.Block.first with
        | Some r -> r
        | None -> -1
      in
      Hashtbl.replace by_region key
        (b :: (try Hashtbl.find by_region key with Not_found -> [])))
    (Block.blocks blocks);
  Hashtbl.iter
    (fun region bs ->
      if region >= 0 then begin
        Fmt.pf ppf "  subgraph cluster_nsr%d {@." region;
        Fmt.pf ppf "    label=\"NSR %d\"; style=dashed;@." region;
        List.iter
          (fun b -> Fmt.pf ppf "    b%d [label=\"%s\"];@." b.Block.id (block_label b))
          bs;
        Fmt.pf ppf "  }@."
      end
      else
        List.iter
          (fun b ->
            Fmt.pf ppf "  b%d [label=\"%s\", shape=diamond, style=filled, \
                        fillcolor=lightyellow];@."
              b.Block.id (block_label b))
          bs)
    by_region;
  Array.iter
    (fun b ->
      List.iter
        (fun s -> Fmt.pf ppf "  b%d -> b%d;@." b.Block.id s)
        (Block.succs blocks b.Block.id))
    (Block.blocks blocks);
  Fmt.pf ppf "}@."

(* Global interference graph: boundary nodes doubled circles, boundary
   interference (shared CSBs) drawn bold, plain co-liveness thin. *)
let interference ppf prog =
  let ctx = Context.create prog in
  Fmt.pf ppf "graph gig {@.";
  Fmt.pf ppf "  node [fontname=\"monospace\", fontsize=10];@.";
  List.iter
    (fun n ->
      let shape =
        if Context.is_boundary n then "doublecircle" else "circle"
      in
      Fmt.pf ppf "  n%d [label=\"%s\", shape=%s];@." n.Context.id
        (escape (Reg.to_string n.Context.vreg))
        shape)
    (Context.nodes ctx);
  let seen = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let bns =
        List.map (fun m -> m.Context.id) (Context.boundary_neighbors ctx n)
      in
      List.iter
        (fun m ->
          let key = (min n.Context.id m.Context.id, max n.Context.id m.Context.id) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            let style =
              if List.mem m.Context.id bns then " [style=bold]" else ""
            in
            Fmt.pf ppf "  n%d -- n%d%s;@." (fst key) (snd key) style
          end)
        (Context.neighbors ctx n))
    (Context.nodes ctx);
  Fmt.pf ppf "}@."

let cfg_string prog = Fmt.str "%a" cfg prog
let interference_string prog = Fmt.str "%a" interference prog
