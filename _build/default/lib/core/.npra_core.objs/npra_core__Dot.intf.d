lib/core/dot.mli: Fmt Npra_ir Prog
