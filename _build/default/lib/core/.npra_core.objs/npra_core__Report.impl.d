lib/core/report.ml: Float Fmt List String
