lib/core/dot.ml: Array Block Buffer Context Fmt Hashtbl Instr List Npra_cfg Npra_ir Npra_regalloc Nsr Prog Reg String
