lib/core/pipeline.ml: Array Assign Chaitin Float Inter List Machine Npra_cfg Npra_ir Npra_regalloc Npra_sim Prog Refexec Reg Rewrite Verify Webs
