(** Graphviz export: the control-flow graph clustered by non-switch
    region (the paper's Figure 4 view) and the global interference graph
    with boundary nodes and boundary interference highlighted (the
    Figure 5 view). *)

open Npra_ir

val cfg : Prog.t Fmt.t
val interference : Prog.t Fmt.t
(** The program should be in web form for a faithful Figure-5 view. *)

val cfg_string : Prog.t -> string
val interference_string : Prog.t -> string
