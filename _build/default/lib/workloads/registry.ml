(* Registry of the benchmark suite: the 11 kernels of the paper's
   Table 1, from CommBench, NetBench, the Intel example code, and the
   WRAPS scheduler [18]. *)

let all : Workload.spec list =
  [
    Kernel_md5.spec;
    Kernel_fir2dim.spec;
    Kernel_frag.spec;
    Kernel_crc32.spec;
    Kernel_drr.spec;
    Kernel_url.spec;
    Kernel_route.spec;
    Kernel_l2l3fwd.spec_rx;
    Kernel_l2l3fwd.spec_tx;
    Kernel_wraps.spec_rx;
    Kernel_wraps.spec_tx;
  ]

let find id =
  List.find_opt (fun s -> s.Workload.id = id) all

let find_exn id =
  match find id with
  | Some s -> s
  | None -> Fmt.invalid_arg "unknown workload %S" id

let ids () = List.map (fun s -> s.Workload.id) all

(* Instantiates a workload on its own memory region: instance [slot]
   occupies [slot * instance_size ..]. *)
let instantiate ?iters spec ~slot =
  let iters = Option.value iters ~default:spec.Workload.default_iters in
  spec.Workload.build ~mem_base:(slot * Workload.instance_size) ~iters
