lib/workloads/kernel_crc32.ml: Array Builder Fmt Instr Npra_ir Workload
