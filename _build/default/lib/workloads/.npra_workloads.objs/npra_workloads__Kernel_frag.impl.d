lib/workloads/kernel_frag.ml: Builder Instr Npra_ir Workload
