lib/workloads/kernel_md5.ml: Array Builder Fmt Instr Npra_ir Workload
