lib/workloads/kernel_url.ml: Builder Instr Npra_ir Workload
