lib/workloads/registry.ml: Fmt Kernel_crc32 Kernel_drr Kernel_fir2dim Kernel_frag Kernel_l2l3fwd Kernel_md5 Kernel_route Kernel_url Kernel_wraps List Option Workload
