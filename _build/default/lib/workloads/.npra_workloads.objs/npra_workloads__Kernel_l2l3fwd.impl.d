lib/workloads/kernel_l2l3fwd.ml: Array Builder Fmt Instr List Npra_ir Workload
