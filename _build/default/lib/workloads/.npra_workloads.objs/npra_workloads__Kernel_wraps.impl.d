lib/workloads/kernel_wraps.ml: Array Builder Fmt Instr Npra_ir Workload
