lib/workloads/kernel_route.ml: Builder Instr List Npra_ir Workload
