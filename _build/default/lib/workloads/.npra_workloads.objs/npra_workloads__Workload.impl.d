lib/workloads/workload.ml: List Npra_ir Prog
