lib/workloads/kernel_fir2dim.ml: Array Builder Fmt Instr Npra_ir Workload
