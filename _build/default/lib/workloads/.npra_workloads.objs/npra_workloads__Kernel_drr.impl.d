lib/workloads/kernel_drr.ml: Array Builder Fmt Instr Npra_ir Workload
