(** Register requirement estimation (paper §5, Figure 7).

    Lower bounds: [min_r] = RegPmax (maximum number of co-live registers
    at any program point), [min_pr] = RegPCSBmax (maximum registers live
    across any single context-switch boundary); both are reachable via
    live-range splitting (the paper's Lemma 1).

    Upper bounds come from a region-based colouring minimising MaxPR
    first: colour the boundary nodes, then each NSR's internal nodes
    independently, then merge and resolve conflict edges, growing MaxR
    only when recolouring fails. *)

open Npra_cfg

type bounds = {
  min_pr : int;
  min_r : int;
  max_pr : int;
  max_r : int;
}

val pp_bounds : bounds Fmt.t

val lower_bounds : Points.t -> int * int
(** [(RegPCSBmax, RegPmax)]. *)

val run : Context.t -> Context.t * bounds
(** Colours an uncoloured context (one node per live range) and returns
    it with the bounds: the colouring uses [max_pr] private and
    [max_r - max_pr] shared colours at zero move cost. *)
