(** Allocation safety verifier.

    Re-analyses rewritten physical programs from scratch and checks the
    paper's safety discipline, most importantly that at every
    context-switch boundary of a thread every value live across the
    switch sits in that thread's private block. *)

open Npra_ir

type error =
  | Virtual_register of { thread : int; instr : int; reg : Reg.t }
  | Register_out_of_file of { thread : int; instr : int; reg : Reg.t }
  | Foreign_register of { thread : int; instr : int; reg : Reg.t }
  | Shared_live_across_csb of { thread : int; instr : int; reg : Reg.t }
  | Blocks_overlap of { thread_a : int; thread_b : int }

val pp_error : error Fmt.t

val check_layout : Assign.t -> error list
val check_thread : Assign.t -> thread:int -> Prog.t -> error list
val check_system : Assign.t -> Prog.t list -> error list
(** Empty list = the allocation is safe. *)
