(** Chaitin-style graph-colouring register allocator with spilling — the
    per-thread baseline the paper compares against (fixed 32-register
    partition, no sharing, no context-switch awareness).

    Spill code addresses the thread's spill area with an immediate; every
    reload/store is a long-latency memory operation and hence itself a
    context switch, which is why spills are so expensive on this machine. *)

open Npra_ir

type result = {
  prog : Prog.t;  (** program after spill rewriting (still virtual) *)
  coloring : int Reg.Map.t;  (** live register -> colour in [1..colors] *)
  colors : int;
  spilled : Reg.Set.t;  (** registers spilled across all iterations *)
  spill_slots : (Reg.t * int) list;
  iterations : int;
}

val allocate :
  ?max_iterations:int -> k:int -> spill_base:int -> Prog.t -> result
(** Classic simplify / optimistic-push / select loop, inserting spill
    code and retrying until colourable with [k] colours. [spill_base] is
    the first memory word of this thread's spill area. *)

val color_count : Prog.t -> int
(** Colours the program with an unbounded palette (no spilling) and
    returns the number of colours used — the paper's "single-thread
    register allocator" register count in Figure 14. *)
