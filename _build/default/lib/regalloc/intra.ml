(* Intra-thread register allocation (paper §7, Figure 10).

   The paper's Reduce-PR and Reduce-SR invocations instantiate one
   engine: {e eliminate a colour [c]}, recolouring the nodes that bear
   it. The engine runs in two scopes:

   - [`All]: colour [c] disappears entirely — a strong PR-step
     [(PR-1, SR, R-1)] or an SR-step [(PR, SR-1, R-1)];
   - [`Boundary]: colour [c] is only removed from boundary nodes and
     demoted to a shared-only colour — the weak PR-step
     [(PR-1, SR+1, R)], which is how private registers are converted
     into shared ones without touching internal live ranges.

   Three escalating tactics per node:

   1. free recolouring — some allowed colour is unused by all neighbours
      (the paper's NCN test);
   2. carve-assisted recolouring — the blockers of a candidate colour are
      split away from the node: for a boundary node the conflicting NSRs
      are excluded whole (Figures 11/12), for an internal node only the
      overlap with the blockers is carved (Figure 13); the carved piece
      keeps colour [c] and, in [`All] scope, is re-queued strictly
      smaller;
   3. fragmentation — the node is exploded into singleton segments; each
      singleton recolours freely or, as a last resort, its gap is
      normalised: every occupant of the gap is fragmented and the gap is
      recoloured from scratch (crossing owners into the private palette
      first). Under the lower-bound guards ([pr' >= RegPCSBmax],
      [r' >= RegPmax] for the post-elimination palette) normalisation
      always succeeds.

   Every tactic strictly shrinks the territory the queue still has to
   recolour, so the engine terminates; the guards make it total, which is
   what lets the inter-thread allocator drive any thread down to its
   lower bounds (the paper's Lemma 1). *)

open Npra_cfg
module IntSet = Points.IntSet

let min_pr ctx = Points.reg_pressure_csb_max (Context.points ctx)
let min_r ctx = Points.reg_pressure_max (Context.points ctx)

let lowest_in allowed used =
  List.find_opt (fun c -> not (IntSet.mem c used)) allowed

exception Infeasible

(* Normalise one gap: fragment every occupant, then recolour all the
   singletons at the gap from scratch — crossing owners get distinct
   private colours first, everything else fills the remaining palette. *)
let normalize_gap ctx gap ~ballowed ~iallowed =
  let occupant_ids ctx =
    List.map (fun n -> n.Context.id) (Context.occupants ctx gap)
  in
  let ctx =
    List.fold_left
      (fun ctx id ->
        let ctx, _ids = Context.fragment ctx id in
        ctx)
      ctx (occupant_ids ctx)
  in
  (* After fragmentation every occupant of [gap] is a singleton {gap}. *)
  let occ = Context.occupants ctx gap in
  let crossing, plain = List.partition Context.is_boundary occ in
  let assign ctx used n allowed =
    (* besides the colours already assigned at this gap, avoid the
       colours of the singleton's move-hazard neighbours (they live at
       other gaps and keep their colours) *)
    let used' =
      List.fold_left
        (fun acc m ->
          if m.Context.color > 0 then IntSet.add m.Context.color acc else acc)
        used
        (Context.hazard_neighbors ctx (Context.node ctx n.Context.id))
    in
    match lowest_in allowed used' with
    | Some c -> (Context.set_color ctx n.Context.id c, IntSet.add c used)
    | None -> raise Infeasible
  in
  let ctx, used =
    List.fold_left
      (fun (ctx, used) n -> assign ctx used n ballowed)
      (ctx, IntSet.empty) crossing
  in
  let ctx, _used =
    List.fold_left
      (fun (ctx, used) n -> assign ctx used n iallowed)
      (ctx, used) plain
  in
  ctx

(* Carve the blockers of colour [c'] away from node [id]. Returns the
   gaps to carve, or None when carving cannot free the node. *)
let carve_set ctx id c' =
  let n = Context.node ctx id in
  let blockers =
    List.filter (fun m -> m.Context.color = c') (Context.neighbors ctx n)
  in
  if blockers = [] then Some IntSet.empty
  else begin
    let shared b = IntSet.inter n.Context.gaps b.Context.gaps in
    let sub =
      if Context.is_boundary n then begin
        (* NSR exclusion: every region where a blocker overlaps [n] is
           excluded whole. Crossing gaps (region-less) are never carved. *)
        let regions = Context.regions ctx in
        let conflict_regions =
          List.fold_left
            (fun acc b -> IntSet.union acc (Nsr.regions_of_gaps regions (shared b)))
            IntSet.empty blockers
        in
        IntSet.filter
          (fun g ->
            match Nsr.region_of_gap regions g with
            | Some r -> IntSet.mem r conflict_regions
            | None -> false)
          n.Context.gaps
      end
      else
        (* Overlap exclusion: carve exactly the gaps shared with blockers. *)
        List.fold_left (fun acc b -> IntSet.union acc (shared b)) IntSet.empty
          blockers
    in
    if IntSet.is_empty sub || IntSet.equal sub n.Context.gaps then None
    else
      (* The kept part must actually be free of the blockers. *)
      let kept = IntSet.diff n.Context.gaps sub in
      let still_blocked =
        List.exists
          (fun b -> not (IntSet.is_empty (IntSet.inter kept b.Context.gaps)))
          blockers
      in
      if still_blocked then None else Some sub
  end

(* Recolour one singleton segment (used by the fragmentation tactic). *)
let recolor_singleton ctx id ~ballowed ~iallowed =
  let n = Context.node ctx id in
  let allowed = if Context.is_boundary n then ballowed else iallowed in
  let used = Context.neighbor_colors ctx n in
  match lowest_in allowed used with
  | Some c -> Context.set_color ctx id c
  | None ->
    let gap =
      match IntSet.choose_opt n.Context.gaps with
      | Some g -> g
      | None -> raise Infeasible
    in
    normalize_gap ctx gap ~ballowed ~iallowed

type scope = [ `All | `Boundary ]

let eliminate_color ?(scope = `All) ctx ~c ~pr ~r =
  let range lo hi = List.init (max 0 (hi - lo + 1)) (fun i -> lo + i) in
  let ballowed = List.filter (fun k -> k <> c) (range 1 pr) in
  let iallowed =
    match scope with
    | `All -> List.filter (fun k -> k <> c) (range 1 r)
    | `Boundary -> range 1 r  (* internal nodes may keep / take [c] *)
  in
  let in_scope n =
    match scope with `All -> true | `Boundary -> Context.is_boundary n
  in
  let queue = Queue.create () in
  List.iter
    (fun n ->
      if n.Context.color = c && in_scope n then Queue.add n.Context.id queue)
    (Context.nodes ctx);
  let ctx = ref ctx in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    (* The node may have been recoloured or normalised meanwhile. *)
    let n = try Some (Context.node !ctx id) with Not_found -> None in
    match n with
    | Some n when n.Context.color = c && in_scope n ->
      let allowed = if Context.is_boundary n then ballowed else iallowed in
      let used = Context.neighbor_colors !ctx n in
      (match lowest_in allowed used with
      | Some c' -> ctx := Context.set_color !ctx id c'
      | None -> (
        (* Carve-assisted: pick the candidate colour whose blockers
           carve away the smallest piece. *)
        let candidates =
          List.filter_map
            (fun c' ->
              match carve_set !ctx id c' with
              | Some sub when not (IntSet.is_empty sub) ->
                Some (IntSet.cardinal sub, c', sub)
              | Some _ | None -> None)
            allowed
        in
        let by_size (ka, ca, _) (kb, cb, _) =
          match Int.compare ka kb with
          | 0 -> Int.compare ca cb
          | cmp -> cmp
        in
        match List.sort by_size candidates with
        | (_, c', sub) :: _ ->
          let ctx', piece = Context.carve !ctx id sub in
          ctx := Context.set_color ctx' id c';
          if scope = `All then Queue.add piece.Context.id queue
        | [] ->
          (* Fragmentation fallback. *)
          let ctx', ids = Context.fragment !ctx id in
          ctx := ctx';
          List.iter
            (fun sid ->
              match Context.node !ctx sid with
              | m when m.Context.color = c && in_scope m ->
                ctx := recolor_singleton !ctx sid ~ballowed ~iallowed
              | _ -> ()
              | exception Not_found -> ())
            ids))
    | Some _ | None -> ()
  done;
  (* Splitting near an already-coloured definition can create a move
     hazard retroactively (the definition clobbers a register a fresh
     move still reads). Repair: recolour the definition's segment, or
     kill the move by aligning the outgoing segment with its sibling, or
     recolour the outgoing segment — each choice validated against the
     full (hazard-aware) neighbourhood. *)
  let repair_rounds = ref 0 in
  let rec repair () =
    match Context.hazard_violations !ctx with
    | [] -> ()
    | violations ->
      incr repair_rounds;
      if !repair_rounds > 10 then raise Infeasible;
      List.iter
        (fun (d, s) ->
          let d = Context.node !ctx d.Context.id
          and s = Context.node !ctx s.Context.id in
          if d.Context.color = s.Context.color then begin
            let try_recolor n =
              let allowed =
                if Context.is_boundary n then ballowed else iallowed
              in
              let used = Context.neighbor_colors !ctx n in
              match lowest_in allowed used with
              | Some c' ->
                ctx := Context.set_color !ctx n.Context.id c';
                true
              | None -> false
            in
            (* align the outgoing segment with its sibling: the move
               disappears, and with it the hazard *)
            let try_align () =
              let sibling_colors =
                IntSet.fold
                  (fun p acc ->
                    match Context.seg !ctx s.Context.vreg (p + 1) with
                    | Some other when other <> s.Context.id ->
                      let c = (Context.node !ctx other).Context.color in
                      if c > 0 then IntSet.add c acc else acc
                    | _ -> acc)
                  s.Context.gaps IntSet.empty
              in
              let allowed =
                if Context.is_boundary s then ballowed else iallowed
              in
              let used = Context.neighbor_colors !ctx s in
              match
                List.find_opt
                  (fun c ->
                    IntSet.mem c sibling_colors && not (IntSet.mem c used))
                  allowed
              with
              | Some c ->
                ctx := Context.set_color !ctx s.Context.id c;
                true
              | None -> false
            in
            if not (try_recolor d) then
              if not (try_align ()) then
                if not (try_recolor s) then raise Infeasible
          end)
        violations;
      repair ()
  in
  repair ();
  (* Compact the palette. In [`All] scope colour [c] is gone: colours
     above shift down. In [`Boundary] scope [c] became shared-only: it
     moves to the top of the palette, the rest compact. *)
  let perm =
    match scope with
    | `All -> fun k -> if k > c then k - 1 else k
    | `Boundary -> fun k -> if k = c then r else if k > c then k - 1 else k
  in
  let ctx = Context.renumber !ctx perm in
  Context.coalesce ctx

type reduction = { ctx : Context.t; cost : int }

(* Evaluates colour eliminations lazily, keeping the cheapest; stops
   early when an elimination adds no moves at all (nothing can beat it,
   since the cost function is the total move count and eliminations never
   remove pre-existing crossings). *)
let try_colors ?scope ctx colors ~pr ~r =
  let floor = Context.move_count ctx in
  let rec go best = function
    | [] -> best
    | c :: rest -> (
      match eliminate_color ?scope ctx ~c ~pr ~r with
      | exception Infeasible -> go best rest
      | ctx' ->
        let cost = Context.move_count ctx' in
        let best =
          match best with
          | Some b when b.cost <= cost -> Some b
          | Some _ | None -> Some { ctx = ctx'; cost }
        in
        if cost <= floor then best else go best rest)
  in
  go None colors

let best reductions = reductions

let private_colors pr = List.init pr (fun i -> i + 1)
let shared_colors pr r = List.init (max 0 (r - pr)) (fun i -> pr + 1 + i)

let reduce_pr ctx ~pr ~r =
  (* Strong PR-step: (PR-1, SR, R-1). *)
  if pr - 1 < min_pr ctx || r - 1 < min_r ctx then None
  else best (try_colors ctx (private_colors pr) ~pr ~r)

let demote_pr ctx ~pr ~r =
  (* Weak PR-step: (PR-1, SR+1, R) — a private colour becomes shared. *)
  if pr - 1 < min_pr ctx then None
  else best (try_colors ~scope:`Boundary ctx (private_colors pr) ~pr ~r)

let reduce_sr ctx ~pr ~r =
  if r - 1 < min_r ctx || r <= pr then None
  else best (try_colors ctx (shared_colors pr r) ~pr ~r)

let reduce_to ctx ~pr ~r ~target_pr ~target_sr =
  (* Drives the context to exactly (target_pr, target_sr), choosing the
     cheapest applicable step each time:
       strong PR   (pr-1, sr)    when pr > target and sr is not short
       demote PR   (pr-1, sr+1)  when pr > target and sr must grow
       reduce SR   (pr, sr-1)    when sr > target *)
  let rec go ctx pr sr =
    if pr = target_pr && sr = target_sr then
      Some { ctx; cost = Context.move_count ctx }
    else begin
      let r = pr + sr in
      let step_strong =
        if pr > target_pr && sr >= target_sr then reduce_pr ctx ~pr ~r
        else None
      in
      let step_demote =
        if pr > target_pr && sr < target_sr then demote_pr ctx ~pr ~r
        else None
      in
      let step_sr =
        if sr > target_sr then reduce_sr ctx ~pr ~r else None
      in
      let cands =
        List.filter_map
          (fun (kind, c) -> Option.map (fun red -> (kind, red)) c)
          [
            (`Strong, step_strong); (`Demote, step_demote); (`Sr, step_sr);
          ]
      in
      match
        List.sort (fun (_, a) (_, b) -> Int.compare a.cost b.cost) cands
      with
      | [] -> None
      | (kind, red) :: _ -> (
        match kind with
        | `Strong -> go red.ctx (pr - 1) sr
        | `Demote -> go red.ctx (pr - 1) (sr + 1)
        | `Sr -> go red.ctx pr (sr - 1))
    end
  in
  if
    target_pr < min_pr ctx
    || target_pr + target_sr < min_r ctx
    || target_pr > pr
    || target_sr > (r - pr) + (pr - target_pr)
  then None
  else go ctx pr (r - pr)

(* The paper's Lemma 1 makes (MinPR, MinR) always reachable on the IXP,
   whose memory reads land in transfer registers. Our machine writes load
   results into GPRs directly, which adds write-back move hazards
   (see {!Context.hazard_neighbors}); in rare shapes they push the floor
   up by a register. [reduce_to_best] finds the nearest reachable point:
   candidates at increasing extra register count, preferring extra shared
   registers over extra private ones. *)
let reduce_to_best ctx ~pr ~r ~target_pr ~target_sr =
  let sr0 = r - pr in
  let max_extra = max 0 (pr + sr0 - (target_pr + target_sr)) in
  let rec try_extra extra =
    if extra > max_extra then None
    else begin
      (* all (tpr, tsr) splits of the total [target + extra], smallest
         private count first (the paper's objective) *)
      let total = target_pr + target_sr + extra in
      let rec try_pr tpr =
        if tpr > pr then None
        else begin
          let tsr = total - tpr in
          if tsr < 0 || tsr > sr0 + (pr - tpr) then try_pr (tpr + 1)
          else
            match reduce_to ctx ~pr ~r ~target_pr:tpr ~target_sr:tsr with
            | Some red -> Some (red, tpr, tsr)
            | None -> try_pr (tpr + 1)
        end
      in
      match try_pr target_pr with
      | Some x -> Some x
      | None -> try_extra (extra + 1)
    end
  in
  try_extra 0
