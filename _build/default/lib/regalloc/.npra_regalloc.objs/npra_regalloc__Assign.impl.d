lib/regalloc/assign.ml: Array Fmt Npra_ir Reg
