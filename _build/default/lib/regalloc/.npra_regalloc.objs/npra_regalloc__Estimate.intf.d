lib/regalloc/estimate.mli: Context Fmt Npra_cfg Points
