lib/regalloc/chaitin.mli: Npra_ir Prog Reg
