lib/regalloc/rewrite.mli: Context Instr Npra_ir Prog Reg
