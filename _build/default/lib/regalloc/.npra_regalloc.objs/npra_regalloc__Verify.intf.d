lib/regalloc/verify.mli: Assign Fmt Npra_ir Prog Reg
