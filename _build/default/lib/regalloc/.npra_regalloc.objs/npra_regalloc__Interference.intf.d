lib/regalloc/interference.mli: Fmt Npra_ir Prog Reg
