lib/regalloc/nsr.ml: Array Dsu Fmt Hashtbl Instr List Npra_cfg Npra_ir Points Prog
