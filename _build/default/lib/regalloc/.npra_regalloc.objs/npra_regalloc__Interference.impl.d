lib/regalloc/interference.ml: Context Fmt List Npra_cfg Npra_ir Nsr Points Reg
