lib/regalloc/chaitin.ml: Array Hashtbl Instr List Loops Npra_cfg Npra_ir Points Prog Reg
