lib/regalloc/assign.mli: Fmt Npra_ir Reg
