lib/regalloc/context.mli: Fmt Npra_cfg Npra_ir Nsr Points Prog Reg
