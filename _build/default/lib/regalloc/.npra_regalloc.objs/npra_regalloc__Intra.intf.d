lib/regalloc/intra.mli: Context
