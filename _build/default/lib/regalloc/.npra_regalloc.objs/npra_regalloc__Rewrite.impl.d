lib/regalloc/rewrite.ml: Array Context Fmt Hashtbl Instr List Npra_ir Prog Reg
