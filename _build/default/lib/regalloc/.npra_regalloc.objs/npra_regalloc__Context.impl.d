lib/regalloc/context.ml: Array Dsu Fmt Hashtbl Instr Int List Map Npra_cfg Npra_ir Nsr Points Prog Reg
