lib/regalloc/intra.ml: Context Int List Npra_cfg Nsr Option Points Queue
