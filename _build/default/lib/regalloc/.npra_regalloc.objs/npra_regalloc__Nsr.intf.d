lib/regalloc/nsr.mli: Fmt Npra_cfg Npra_ir Points Prog
