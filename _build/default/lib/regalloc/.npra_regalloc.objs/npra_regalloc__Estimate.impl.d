lib/regalloc/estimate.ml: Context Fmt Hashtbl Int List Npra_cfg Points
