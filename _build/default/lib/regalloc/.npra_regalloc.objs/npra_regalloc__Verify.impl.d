lib/regalloc/verify.ml: Array Assign Fmt Instr List Liveness Npra_cfg Npra_ir Prog Reg
