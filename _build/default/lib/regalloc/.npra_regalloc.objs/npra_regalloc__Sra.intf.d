lib/regalloc/sra.mli: Context Estimate Fmt Npra_ir Prog
