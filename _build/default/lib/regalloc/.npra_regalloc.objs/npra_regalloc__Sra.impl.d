lib/regalloc/sra.ml: Context Estimate Fmt Intra Npra_ir Prog
