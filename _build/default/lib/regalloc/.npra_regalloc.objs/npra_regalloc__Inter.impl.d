lib/regalloc/inter.ml: Array Context Estimate Fmt Fun Intra List Npra_ir Prog
