lib/regalloc/inter.mli: Context Estimate Fmt Npra_ir Prog
