(* Symmetric register allocation (paper §8).

   All threads run the same program, so PR and SR are equal across
   threads and the pooled constraint collapses to
   [Nthd * PR + SR <= Nreg]. The solution space is small enough to
   traverse exhaustively: for every feasible (PR, SR) pair we drive one
   context there with the intra-thread allocator and keep the cheapest
   allocation. *)

open Npra_ir

type t = {
  name : string;
  prog : Prog.t;
  ctx : Context.t;
  bounds : Estimate.bounds;
  nthd : int;
  pr : int;
  sr : int;
  cost : int;  (* move instructions per thread *)
}

type error = [ `Infeasible of string ]

let demand t = (t.nthd * t.pr) + t.sr

let allocate ~nreg ~nthd prog =
  let ctx0 = Context.create prog in
  let ctx0, bounds = Estimate.run ctx0 in
  let { Estimate.min_pr; min_r; max_pr; max_r } = bounds in
  let max_sr = max_r - max_pr in
  let best = ref None in
  for pr = min_pr to max_pr do
    let sr_floor = max 0 (min_r - pr) in
    let sr_budget = nreg - (nthd * pr) in
    (* A larger SR never costs more moves, so take the largest SR that
       both fits the budget and is reachable from the estimate. *)
    let sr = min max_sr sr_budget in
    if sr >= sr_floor && sr_budget >= sr_floor then begin
      let result =
        if pr = max_pr && sr = max_sr then
          Some { Intra.ctx = ctx0; cost = Context.move_count ctx0 }
        else
          Intra.reduce_to ctx0 ~pr:max_pr ~r:max_r ~target_pr:pr
            ~target_sr:sr
      in
      match result with
      | None -> ()
      | Some red ->
        let cand =
          {
            name = prog.Prog.name;
            prog;
            ctx = red.Intra.ctx;
            bounds;
            nthd;
            pr;
            sr;
            cost = red.Intra.cost;
          }
        in
        let better =
          match !best with
          | None -> true
          | Some b ->
            cand.cost < b.cost || (cand.cost = b.cost && demand cand < demand b)
        in
        if better then best := Some cand
    end
  done;
  match !best with
  | Some b -> Ok b
  | None ->
    Error
      (`Infeasible
        (Fmt.str "no (PR, SR) in [%d..%d] fits %d threads into %d registers"
           min_pr max_pr nthd nreg))

let pp ppf t =
  Fmt.pf ppf "%s: %d threads, PR=%d SR=%d demand=%d moves/thread=%d (%a)"
    t.name t.nthd t.pr t.sr (demand t) t.cost Estimate.pp_bounds t.bounds
