(** Non-Switch Regions (paper §3.1).

    An NSR is a maximal connected subgraph of the CFG containing no
    context-switch instruction; its boundaries are CSBs and the program
    entry/exit points. Regions are computed at instruction granularity;
    CSB instructions belong to no region — they {e are} the boundaries. *)

open Npra_ir
open Npra_cfg

type t

val compute : Prog.t -> t

val num_regions : t -> int

val region_of_instr : t -> int -> int option
(** [None] exactly when the instruction causes a context switch. *)

val region_of_gap : t -> int -> int option
(** Region of the gap before instruction [p]; [None] for boundary gaps
    (gaps at CSB instructions and the end-of-program gap). *)

val region_sizes : t -> int array
(** Instructions per region. *)

val average_size : t -> float

val regions_of_gaps : t -> Points.IntSet.t -> Points.IntSet.t
(** Distinct regions touched by a set of gaps (boundary gaps ignored). *)

val pp : t Fmt.t
