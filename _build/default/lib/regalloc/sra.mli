(** Symmetric register allocation (paper §8).

    All threads run the same program, so the pooled constraint collapses
    to [Nthd * PR + SR <= Nreg] and the (PR, SR) space is traversed
    exhaustively for the cheapest allocation. *)

open Npra_ir

type t = {
  name : string;
  prog : Prog.t;
  ctx : Context.t;
  bounds : Estimate.bounds;
  nthd : int;
  pr : int;
  sr : int;
  cost : int;  (** move instructions per thread *)
}

type error = [ `Infeasible of string ]

val demand : t -> int
(** [Nthd * PR + SR]. *)

val allocate : nreg:int -> nthd:int -> Prog.t -> (t, error) result
(** The program must be in web form ({!Npra_cfg.Webs.rename}). *)

val pp : t Fmt.t
