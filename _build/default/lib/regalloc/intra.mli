(** Intra-thread register allocation (paper §7, Figure 10).

    The paper's Reduce-PR and Reduce-SR invocations both instantiate one
    engine — {!eliminate_color} — that removes a colour from the whole
    context by recolouring, NSR exclusion / overlap carving, and as a
    last resort fragmentation plus per-gap normalisation. The engine is
    total whenever the post-elimination palette respects the lower bounds
    ([pr-1 >= RegPCSBmax] for PR-steps, [r-1 >= RegPmax] for either),
    which is what lets the inter-thread allocator drive any thread down
    to its bounds (the paper's Lemma 1). *)

type reduction = {
  ctx : Context.t;
  cost : int;  (** move instructions implied by the new context *)
}

exception Infeasible

val min_pr : Context.t -> int
(** RegPCSBmax of the underlying program. *)

val min_r : Context.t -> int
(** RegPmax of the underlying program. *)

type scope = [ `All | `Boundary ]

val eliminate_color :
  ?scope:scope -> Context.t -> c:int -> pr:int -> r:int -> Context.t
(** Removes colour [c]: in scope [`All] from every node (strong step,
    palette compacts to [r-1] colours); in scope [`Boundary] only from
    boundary nodes, demoting [c] to a shared-only colour (it moves to
    the top of the palette, [r] unchanged).
    @raise Infeasible when a gap cannot be normalised — impossible under
    the lower-bound guards. *)

val reduce_pr : Context.t -> pr:int -> r:int -> reduction option
(** Best strong PR-step [(PR-1, SR, R-1)]: tries every private colour,
    keeps the cheapest elimination. [None] below the lower bounds. *)

val demote_pr : Context.t -> pr:int -> r:int -> reduction option
(** Best weak PR-step [(PR-1, SR+1, R)]: a private colour becomes
    shared-only. [None] below [RegPCSBmax]. *)

val reduce_sr : Context.t -> pr:int -> r:int -> reduction option
(** Best SR-step [(PR, SR-1, R-1)]: tries every shared colour. [None]
    below the lower bounds. *)

val reduce_to :
  Context.t ->
  pr:int ->
  r:int ->
  target_pr:int ->
  target_sr:int ->
  reduction option
(** Drives the context from [(pr, r)] to exactly [(target_pr, target_sr)]
    colours, choosing the cheaper of a PR-step and an SR-step greedily. *)

val reduce_to_best :
  Context.t ->
  pr:int ->
  r:int ->
  target_pr:int ->
  target_sr:int ->
  (reduction * int * int) option
(** Like {!reduce_to}, but when the exact target is unreachable (the
    write-back move hazards of a GPR-targeting load can push the floor
    one register above the paper's Lemma 1) returns the nearest reachable
    point [(reduction, pr, sr)], preferring extra shared registers. *)
