(* Register requirement estimation (paper §5, Figure 7).

   Lower bounds: MinR = RegPmax (maximum co-live registers at any point),
   MinPR = RegPCSBmax (maximum registers live across any single CSB); both
   are reachable by live-range splitting (Lemma 1).

   Upper bounds come from a region-based colouring that minimises MaxPR
   first: colour the boundary nodes, then each NSR's internal nodes
   independently, then merge and resolve the conflict edges between the
   internal colourings and the boundary colouring, growing MaxR only when
   recolouring fails.

   One deliberate deviation from the paper's description: phase 1 colours
   the subgraph induced by boundary nodes under *all* interference edges,
   not only boundary-interference edges — two boundary nodes that overlap
   inside an NSR but never cross the same CSB still need distinct private
   registers, and handling those edges up front keeps the merge phase
   simple without changing the bound's role. *)

open Npra_cfg
module IntSet = Points.IntSet

type bounds = {
  min_pr : int;
  min_r : int;
  max_pr : int;
  max_r : int;
}

let pp_bounds ppf b =
  Fmt.pf ppf "MinPR=%d MinR=%d MaxPR=%d MaxR=%d" b.min_pr b.min_r b.max_pr
    b.max_r

let lower_bounds pts =
  (Points.reg_pressure_csb_max pts, Points.reg_pressure_max pts)

(* Greedy colouring helper: lowest colour (from 1) not in [used]. *)
let lowest_free used =
  let rec go c = if IntSet.mem c used then go (c + 1) else c in
  go 1

(* Node ids are stable during estimation (no splitting happens), so the
   interference adjacency can be snapshotted once instead of re-deriving
   neighbours from gap occupancy on every query. *)
let adjacency ctx =
  let adj : (int, IntSet.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace adj n.Context.id IntSet.empty)
    (Context.nodes ctx);
  let ngaps = Points.num_gaps (Context.points ctx) in
  for gap = 0 to ngaps - 1 do
    let occ = Context.occupants ctx gap in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a.Context.id <> b.Context.id then
              Hashtbl.replace adj a.Context.id
                (IntSet.add b.Context.id (Hashtbl.find adj a.Context.id)))
          occ)
      occ
  done;
  fun id -> try Hashtbl.find adj id with Not_found -> IntSet.empty

let by_degree_desc adj ns =
  let with_deg =
    List.map (fun n -> (IntSet.cardinal (adj n.Context.id), n)) ns
  in
  List.stable_sort
    (fun (da, a) (db, b) ->
      match Int.compare db da with
      | 0 -> Int.compare a.Context.id b.Context.id
      | c -> c)
    with_deg
  |> List.map snd

let neighbor_colors_via adj ctx id =
  IntSet.fold
    (fun m acc ->
      let c = (Context.node ctx m).Context.color in
      if c > 0 then IntSet.add c acc else acc)
    (adj id) IntSet.empty

(* Phase 1: colour boundary nodes. *)
let color_boundary adj ctx =
  let boundary = List.filter Context.is_boundary (Context.nodes ctx) in
  List.fold_left
    (fun ctx n ->
      (* Only boundary neighbours are coloured at this stage, so the used
         set automatically restricts to them. *)
      let used = neighbor_colors_via adj ctx n.Context.id in
      Context.set_color ctx n.Context.id (lowest_free used))
    ctx
    (by_degree_desc adj boundary)

(* Phase 2: colour internal nodes per region, independently (ignoring
   boundary nodes), from colour 1 up. *)
let color_internal_independent adj ctx =
  let internal =
    List.filter (fun n -> not (Context.is_boundary n)) (Context.nodes ctx)
  in
  List.fold_left
    (fun ctx n ->
      let used =
        IntSet.fold
          (fun m acc ->
            let mn = Context.node ctx m in
            if (not (Context.is_boundary mn)) && mn.Context.color > 0 then
              IntSet.add mn.Context.color acc
            else acc)
          (adj n.Context.id) IntSet.empty
      in
      Context.set_color ctx n.Context.id (lowest_free used))
    ctx
    (by_degree_desc adj internal)

(* Phase 3: merge. After the independent colourings, the only possible
   conflicts are between an internal node and a boundary neighbour. For
   each such conflict: recolour the internal node within the current R if
   possible; otherwise try recolouring the blocking boundary neighbours
   within MaxPR; otherwise grow R. *)
let merge adj ctx ~max_pr =
  let r = ref (max (Context.max_color ctx) max_pr) in
  let internal_ids =
    List.filter_map
      (fun n -> if Context.is_boundary n then None else Some n.Context.id)
      (Context.nodes ctx)
  in
  let recolor_blockers ctx id =
    let color = (Context.node ctx id).Context.color in
    IntSet.fold
      (fun m ctx ->
        let mn = Context.node ctx m in
        if mn.Context.color = color && Context.is_boundary mn then begin
          let used = neighbor_colors_via adj ctx m in
          let cb = lowest_free used in
          if cb <= max_pr then Context.set_color ctx m cb else ctx
        end
        else ctx)
      (adj id) ctx
  in
  let ctx =
    List.fold_left
      (fun ctx id ->
        let conflict ctx =
          let n = Context.node ctx id in
          IntSet.exists
            (fun m -> (Context.node ctx m).Context.color = n.Context.color)
            (adj id)
        in
        if not (conflict ctx) then ctx
        else
          let used = neighbor_colors_via adj ctx id in
          let c = lowest_free used in
          if c <= !r then Context.set_color ctx id c
          else
            let ctx' = recolor_blockers ctx id in
            if not (conflict ctx') then ctx'
            else begin
              r := !r + 1;
              Context.set_color ctx id !r
            end)
      ctx internal_ids
  in
  (ctx, !r)

let run ctx =
  let adj = adjacency ctx in
  let ctx = color_boundary adj ctx in
  let max_pr = Context.max_boundary_color ctx in
  let ctx = color_internal_independent adj ctx in
  let ctx, max_r = merge adj ctx ~max_pr in
  let max_r = max max_r max_pr in
  let min_pr, min_r = lower_bounds (Context.points ctx) in
  (ctx, { min_pr; min_r; max_pr; max_r })
