(* Allocation safety verifier.

   Re-analyses the rewritten physical programs from scratch (it shares no
   state with the allocator) and checks the paper's safety discipline:

   - every register occurrence is physical and within the file;
   - thread blocks are disjoint, the shared block overlaps no private one;
   - at every context-switch boundary of thread [i], every value live
     across the switch sits in thread [i]'s private block — the property
     that makes register sharing safe when only the PC is preserved. *)

open Npra_ir
open Npra_cfg

type error =
  | Virtual_register of { thread : int; instr : int; reg : Reg.t }
  | Register_out_of_file of { thread : int; instr : int; reg : Reg.t }
  | Foreign_register of { thread : int; instr : int; reg : Reg.t }
      (* register inside another thread's private block *)
  | Shared_live_across_csb of { thread : int; instr : int; reg : Reg.t }
  | Blocks_overlap of { thread_a : int; thread_b : int }

let pp_error ppf = function
  | Virtual_register { thread; instr; reg } ->
    Fmt.pf ppf "thread %d instr %d: virtual register %a survived allocation"
      thread instr Reg.pp reg
  | Register_out_of_file { thread; instr; reg } ->
    Fmt.pf ppf "thread %d instr %d: %a outside the register file" thread
      instr Reg.pp reg
  | Foreign_register { thread; instr; reg } ->
    Fmt.pf ppf "thread %d instr %d: %a lies in another thread's private block"
      thread instr Reg.pp reg
  | Shared_live_across_csb { thread; instr; reg } ->
    Fmt.pf ppf
      "thread %d: %a is live across the context switch at instr %d but is \
       not private to the thread"
      thread Reg.pp reg instr
  | Blocks_overlap { thread_a; thread_b } ->
    Fmt.pf ppf "private blocks of threads %d and %d overlap" thread_a
      thread_b

let in_range (lo, hi) n = n >= lo && n < hi

let check_layout (layout : Assign.t) =
  let errs = ref [] in
  let nthd = Array.length layout.Assign.private_base in
  for a = 0 to nthd - 1 do
    for b = a + 1 to nthd - 1 do
      let la, ha = Assign.private_range layout ~thread:a in
      let lb, hb = Assign.private_range layout ~thread:b in
      if la < hb && lb < ha then
        errs := Blocks_overlap { thread_a = a; thread_b = b } :: !errs
    done
  done;
  !errs

let check_thread (layout : Assign.t) ~thread prog =
  let errs = ref [] in
  let my_private = Assign.private_range layout ~thread in
  let foreign n =
    Array.to_list layout.Assign.private_base
    |> List.mapi (fun t base -> (t, (base, base + layout.Assign.private_size.(t))))
    |> List.exists (fun (t, range) -> t <> thread && in_range range n)
  in
  Prog.fold_instrs
    (fun () i ins ->
      List.iter
        (fun r ->
          match r with
          | Reg.V _ -> errs := Virtual_register { thread; instr = i; reg = r } :: !errs
          | Reg.P n ->
            if n < 0 || n >= layout.Assign.nreg then
              errs := Register_out_of_file { thread; instr = i; reg = r } :: !errs
            else if foreign n then
              errs := Foreign_register { thread; instr = i; reg = r } :: !errs)
        (Instr.defs ins @ Instr.uses ins))
    () prog;
  let live = Liveness.compute prog in
  Prog.fold_instrs
    (fun () i ins ->
      if Instr.causes_ctx_switch ins then
        Reg.Set.iter
          (fun r ->
            match r with
            | Reg.P n when in_range my_private n -> ()
            | _ ->
              errs := Shared_live_across_csb { thread; instr = i; reg = r } :: !errs)
          (Liveness.live_across live i))
    () prog;
  List.rev !errs

let check_system layout progs =
  let layout_errs = check_layout layout in
  let thread_errs =
    List.concat (List.mapi (fun t p -> check_thread layout ~thread:t p) progs)
  in
  layout_errs @ thread_errs
