(** Allocation context: the state the intra-thread allocator works on.

    A context partitions every live range (web) into {e segments}
    ("nodes"), each a set of gaps plus the context-switch crossings it
    owns, together with a colour per node. The representation is purely
    functional, so snapshotting a context for what-if exploration (the
    paper's saved invocation contexts) is free.

    Cost model: a move instruction materialises on every gap edge where a
    value changes segment into a segment of a different colour; adjacent
    same-colour segments cost nothing — the paper's "eliminate unnecessary
    moves" falls out of the cost function and of {!coalesce}. *)

open Npra_ir
open Npra_cfg
module IntSet = Points.IntSet

type node = private {
  id : int;
  vreg : Reg.t;
  gaps : IntSet.t;
  csbs : IntSet.t;  (** crossings owned: CSBs [c] with gap [c] in [gaps] *)
  color : int;  (** [0] = uncoloured; [1..PR] private, [PR+1..R] shared *)
}

type t

val create : Prog.t -> t
(** One node per live register, uncoloured. The program should be in web
    form ({!Npra_cfg.Webs.rename}). *)

val prog : t -> Prog.t
val points : t -> Points.t
val regions : t -> Nsr.t

val node : t -> int -> node
val nodes : t -> node list
val num_nodes : t -> int

val seg : t -> Reg.t -> int -> int option
(** [seg t v gap] is the id of the segment of [v] live at [gap]. *)

val is_boundary : node -> bool
(** A node owning at least one crossing must take a private colour. *)

val occupants : t -> int -> node list
(** Segments live at a gap. Two occupants of one gap interfere. *)

val neighbors : t -> node -> node list
(** All distinct segments sharing a gap with the node (GIG edges), plus
    move-hazard edges: a move materialised on a fallthrough edge
    [(p, p+1)] executes after instruction [p], so the segment receiving
    [p]'s definition interferes with every segment whose value that
    edge's moves still read. *)

val hazard_neighbors : t -> node -> node list
(** Just the move-hazard neighbours (see {!neighbors}). *)

val hazard_violations : t -> (node * node) list
(** All (definition segment, outgoing segment) pairs currently sharing a
    colour — clobber cases a colouring pass must repair. *)

val boundary_neighbors : t -> node -> node list
(** Segments crossing a CSB the node also crosses (BIG edges). *)

val neighbor_colors : t -> node -> IntSet.t

val set_color : t -> int -> int -> t

val carve : t -> int -> IntSet.t -> t * node
(** [carve t id sub] splits [sub] (strict non-empty subset of the node's
    gaps) out of node [id] into a fresh node keeping the original colour.
    Returns the new context and the new node. *)

val fragment : t -> int -> t * int list
(** Explodes a node into one singleton segment per gap; returns all
    resulting node ids (the original id keeps one gap). *)

val web_edges : t -> Reg.t -> (int * int) list

val crossing_moves : t -> ((int * int) * Reg.t * node * node) list
(** All [(edge, vreg, src, dst)] where a value changes into a segment of a
    different colour — exactly the moves the rewriter will materialise. *)

val move_count : t -> int
(** The allocation cost: number of move instructions implied. *)

val weighted_move_count : t -> (int -> int) -> int
(** Moves weighted by [10^loop_depth(edge source)] — estimated dynamic
    move count, for the ablation benchmarks. *)

val coalesce : t -> t
(** Merges adjacent same-vreg same-colour segments. *)

val max_color : t -> int
val max_boundary_color : t -> int

val renumber : t -> (int -> int) -> t
(** Applies a colour permutation/compaction. *)

type check_error =
  | Uncolored of int
  | Color_out_of_range of int * int
  | Boundary_color_too_high of int * int
  | Clash_at_gap of int * int * int
  | Move_hazard_at_edge of int * int * int

val pp_check_error : check_error Fmt.t

val check : t -> pr:int -> r:int -> check_error list
(** Validates the colouring: every node coloured in [1..r], boundary nodes
    in [1..pr], no two co-live segments sharing a colour. *)

val pp : t Fmt.t
