(* Non-Switch Regions (paper §3.1).

   An NSR is a maximal connected subgraph of the CFG containing no
   context-switch instruction; its boundaries are CSBs and the program
   entry/exit. We compute regions at instruction granularity with a
   union-find: two non-CSB instructions joined by a CFG edge share a
   region. CSB instructions belong to no region — they are the
   boundaries. *)

open Npra_ir
open Npra_cfg

type t = {
  prog : Prog.t;
  region_of_instr : int option array;
  num_regions : int;
  region_sizes : int array;  (* instructions per region *)
}

let compute prog =
  let n = Prog.length prog in
  let is_csb i = Instr.causes_ctx_switch (Prog.instr prog i) in
  let dsu = Dsu.create n in
  for i = 0 to n - 1 do
    if not (is_csb i) then
      List.iter
        (fun j -> if j < n && not (is_csb j) then Dsu.union dsu i j)
        (Prog.succs prog i)
  done;
  (* Compact representative roots to dense region ids. *)
  let id_of_root = Hashtbl.create 16 in
  let next = ref 0 in
  let region_of_instr =
    Array.init n (fun i ->
        if is_csb i then None
        else begin
          let root = Dsu.find dsu i in
          let id =
            match Hashtbl.find_opt id_of_root root with
            | Some id -> id
            | None ->
              let id = !next in
              incr next;
              Hashtbl.add id_of_root root id;
              id
          in
          Some id
        end)
  in
  let region_sizes = Array.make !next 0 in
  Array.iter
    (function
      | Some r -> region_sizes.(r) <- region_sizes.(r) + 1
      | None -> ())
    region_of_instr;
  { prog; region_of_instr; num_regions = !next; region_sizes }

let num_regions t = t.num_regions

let region_of_instr t i = t.region_of_instr.(i)

let region_of_gap t p =
  (* Gap [p] sits before instruction [p]; it is inside a region exactly
     when that instruction is (gap [n] and CSB gaps are boundary gaps). *)
  if p >= Array.length t.region_of_instr then None else t.region_of_instr.(p)

let region_sizes t = Array.copy t.region_sizes

let average_size t =
  if t.num_regions = 0 then 0.
  else
    float_of_int (Array.fold_left ( + ) 0 t.region_sizes)
    /. float_of_int t.num_regions

let regions_of_gaps t gaps =
  Points.IntSet.fold
    (fun p acc ->
      match region_of_gap t p with
      | Some r -> Points.IntSet.add r acc
      | None -> acc)
    gaps Points.IntSet.empty

let pp ppf t =
  Fmt.pf ppf "NSRs: %d, sizes: [%a]@." t.num_regions
    Fmt.(array ~sep:semi int)
    t.region_sizes
