(** Reference executor: functional single-thread semantics with an
    unbounded register environment, ignoring timing and context
    switching. A register allocation is correct exactly when it preserves
    every thread's store trace against this reference. *)

open Npra_ir

type result = {
  store_trace : (int * int) list;  (** (address, value), program order *)
  final_memory : (int * int) list;  (** sorted (address, value) pairs *)
  instructions : int;
  loads : int;
}

exception Runaway of string

val run : ?max_steps:int -> ?mem_image:(int * int) list -> Prog.t -> result
