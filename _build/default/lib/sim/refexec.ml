(* Reference executor: functional single-thread semantics.

   Executes one program sequentially with an unbounded register
   environment (virtual and physical registers both allowed), ignoring
   timing and context switching entirely. Its observable behaviour — the
   sequence of stores, plus load/instruction counts — is the golden
   reference the differential tests compare the multithreaded machine
   against: a register allocation is correct exactly when it preserves
   every thread's store trace. *)

open Npra_ir

type result = {
  store_trace : (int * int) list;  (* (address, value), program order *)
  final_memory : (int * int) list;  (* sorted *)
  instructions : int;
  loads : int;
}

exception Runaway of string

let run ?(max_steps = 10_000_000) ?(mem_image = []) prog =
  let regs : (Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let mem = Memory.create () in
  Memory.load_image mem mem_image;
  let reg r = match Hashtbl.find_opt regs r with Some v -> v | None -> 0 in
  let operand = function Instr.Reg r -> reg r | Instr.Imm n -> n in
  let stores = ref [] in
  let loads = ref 0 in
  let steps = ref 0 in
  let pc = ref 0 in
  let halted = ref false in
  while not !halted do
    incr steps;
    if !steps > max_steps then
      raise (Runaway (Fmt.str "%s: exceeded %d steps" prog.Prog.name max_steps));
    let ins = Prog.instr prog !pc in
    let next = !pc + 1 in
    (match ins with
    | Instr.Alu { op; dst; src1; src2 } ->
      Hashtbl.replace regs dst (Instr.eval_alu op (reg src1) (operand src2));
      pc := next
    | Instr.Mov { dst; src } ->
      Hashtbl.replace regs dst (reg src);
      pc := next
    | Instr.Movi { dst; imm } ->
      Hashtbl.replace regs dst imm;
      pc := next
    | Instr.Load { dst; addr; off } ->
      incr loads;
      Hashtbl.replace regs dst (Memory.read mem (reg addr + off));
      pc := next
    | Instr.Store { src; addr; off } ->
      let a = reg addr + off in
      let v = reg src in
      Memory.write mem a v;
      stores := (a, v) :: !stores;
      pc := next
    | Instr.Br { target } -> pc := Prog.label_index prog target
    | Instr.Brc { cond; src1; src2; target } ->
      if Instr.eval_cond cond (reg src1) (operand src2) then
        pc := Prog.label_index prog target
      else pc := next
    | Instr.Ctx_switch | Instr.Nop -> pc := next
    | Instr.Halt -> halted := true)
  done;
  {
    store_trace = List.rev !stores;
    final_memory = Memory.dump mem;
    instructions = !steps;
    loads = !loads;
  }
