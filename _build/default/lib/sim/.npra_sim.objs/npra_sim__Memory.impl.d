lib/sim/memory.ml: Hashtbl List
