lib/sim/refexec.mli: Npra_ir Prog
