lib/sim/machine.ml: Array Fmt Instr List Memory Npra_ir Prog Reg
