lib/sim/refexec.ml: Fmt Hashtbl Instr List Memory Npra_ir Prog Reg
