lib/sim/machine.mli: Fmt Memory Npra_ir Prog
