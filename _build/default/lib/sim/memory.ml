(* Word-addressed memory shared by all threads of a processing unit.

   The model is a flat sparse array of words; addresses are plain
   integers. Every load/store carries the fixed SRAM latency configured
   in the machine — there is no cache, matching the modelled NPU. *)

type t = {
  words : (int, int) Hashtbl.t;
  mutable reads : int;
  mutable writes : int;
}

let create () = { words = Hashtbl.create 1024; reads = 0; writes = 0 }

let read t addr =
  t.reads <- t.reads + 1;
  match Hashtbl.find_opt t.words addr with Some v -> v | None -> 0

let peek t addr =
  match Hashtbl.find_opt t.words addr with Some v -> v | None -> 0

let write t addr v =
  t.writes <- t.writes + 1;
  Hashtbl.replace t.words addr v

let poke t addr v = Hashtbl.replace t.words addr v

let load_image t image = List.iter (fun (a, v) -> poke t a v) image

let reads t = t.reads
let writes t = t.writes

let dump t =
  Hashtbl.fold (fun a v acc -> (a, v) :: acc) t.words []
  |> List.sort compare
