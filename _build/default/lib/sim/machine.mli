(** Cycle-level model of one multithreaded processing unit.

    Follows the paper's architecture: non-preemptive threads over a
    shared register file, 1-cycle ALU/branch, long-latency memory
    operations that yield the PU (switch-on-issue, write-back at next
    dispatch — the transfer-register rule), voluntary [ctx_switch], and
    round-robin scheduling with a configurable switch cost. *)

open Npra_ir

type config = {
  nreg : int;
  mem_latency : int;
  ctx_switch_cost : int;
  max_cycles : int;  (** safety limit; exceeding it raises {!Stuck} *)
}

val default_config : config
(** 128 GPRs, 20-cycle memory, 1-cycle switch — the paper's machine. *)

type t

exception Stuck of string

val create :
  ?config:config ->
  ?mem_image:(int * int) list ->
  ?timeline:bool ->
  Prog.t list ->
  t
(** One thread per program; programs must be fully physical. [mem_image]
    preloads memory words (packet buffers, tables); [timeline] records
    scheduling events for {!pp_timeline}. *)

val memory : t -> Memory.t

type timeline_event =
  | Dispatched
  | Blocked_on_memory
  | Yielded
  | Halted

val timeline : t -> (int * int * timeline_event) list
(** (cycle, thread index, event), in time order; empty unless the
    machine was created with [~timeline:true]. *)

val pp_timeline : t Fmt.t
(** Renders the recorded events as per-dispatch run intervals. *)

val run :
  ?config:config ->
  ?mem_image:(int * int) list ->
  ?timeline:bool ->
  Prog.t list ->
  t
(** Runs all threads to completion and returns the final machine.
    @raise Stuck on runaway execution or virtual registers. *)

type thread_report = {
  name : string;
  completion : int option;  (** cycle the thread halted, if it did *)
  instructions : int;
  context_switches : int;
  load_count : int;
  store_count : int;
  move_count : int;
  wait_cycles : int;
      (** cycles the thread was runnable but queued behind others *)
  store_trace : (int * int) list;
      (** per-thread [(address, value)] store sequence, in program order —
          the observable behaviour used by differential tests *)
}

type report = {
  total_cycles : int;
  busy_cycles : int;  (** some thread was executing *)
  switch_cycles : int;  (** context-switch overhead *)
  idle_cycles : int;  (** every thread blocked on memory *)
  utilization : float;  (** busy / total *)
  thread_reports : thread_report list;
}

val report : t -> report
val pp_report : report Fmt.t
