(* Cycle-level model of one multithreaded processing unit.

   The model follows the paper's architecture (§1.1, §2):

   - up to [Nthd] non-preemptive hardware threads share one ALU and one
     register file of [nreg] general-purpose registers;
   - every instruction takes one cycle;
   - [load]/[store] relinquish the PU while the access is in flight
     ([mem_latency] cycles, no cache); a load's destination register is
     written back only when the thread is dispatched again (the
     transfer-register rule — this is what makes unsafe register sharing
     observable as corruption, which the tests rely on);
   - [ctx_switch] yields voluntarily; only the PC is preserved;
   - dispatching a different thread costs [ctx_switch_cost] cycles;
   - scheduling is round-robin over ready threads.

   Programs must be fully physical; running a virtual register trips an
   exception. *)

open Npra_ir

type config = {
  nreg : int;
  mem_latency : int;
  ctx_switch_cost : int;
  max_cycles : int;
}

let default_config =
  { nreg = 128; mem_latency = 20; ctx_switch_cost = 1; max_cycles = 100_000_000 }

type status =
  | Ready
  | Blocked of { until : int }
  | Done of int  (* completion cycle *)

type thread = {
  id : int;
  prog : Prog.t;
  mutable pc : int;
  mutable status : status;
  mutable instrs : int;
  mutable ctx_events : int;
  mutable loads : int;
  mutable stores : int;
  mutable moves : int;
  mutable pending_writeback : (Reg.t * int) option;
      (* a load's destination value, applied only when the thread is
         dispatched again — the transfer-register rule *)
  mutable store_trace_rev : (int * int) list;
  mutable ready_since : int;  (* cycle the thread last became runnable *)
  mutable wait_cycles : int;  (* runnable but not running *)
}

type timeline_event =
  | Dispatched
  | Blocked_on_memory
  | Yielded
  | Halted

type t = {
  config : config;
  regs : int array;
  mem : Memory.t;
  threads : thread array;
  mutable cycle : int;
  mutable dispatches : int;
  mutable busy_cycles : int;  (* cycles spent executing instructions *)
  mutable switch_cycles : int;  (* context-switch overhead *)
  record_timeline : bool;
  mutable timeline_rev : (int * int * timeline_event) list;
      (* (cycle, thread, event) — only when [record_timeline] *)
}

exception Stuck of string

let create ?(config = default_config) ?(mem_image = []) ?(timeline = false)
    progs =
  List.iter
    (fun p ->
      if not (Prog.all_physical p) then
        raise (Stuck (Fmt.str "program %s has virtual registers" p.Prog.name)))
    progs;
  let mem = Memory.create () in
  Memory.load_image mem mem_image;
  {
    config;
    regs = Array.make config.nreg 0;
    mem;
    threads =
      Array.of_list
        (List.mapi
           (fun id prog ->
             {
               id;
               prog;
               pc = 0;
               status = Ready;
               instrs = 0;
               ctx_events = 0;
               loads = 0;
               stores = 0;
               moves = 0;
               pending_writeback = None;
               store_trace_rev = [];
               ready_since = 0;
               wait_cycles = 0;
             })
           progs);
    cycle = 0;
    dispatches = 0;
    busy_cycles = 0;
    switch_cycles = 0;
    record_timeline = timeline;
    timeline_rev = [];
  }

let memory t = t.mem

let record t thread event =
  if t.record_timeline then
    t.timeline_rev <- (t.cycle, thread, event) :: t.timeline_rev

let timeline t = List.rev t.timeline_rev

let reg_value t r =
  match r with
  | Reg.P n -> t.regs.(n)
  | Reg.V _ -> raise (Stuck (Fmt.str "virtual register %a executed" Reg.pp r))

let set_reg t r v =
  match r with
  | Reg.P n -> t.regs.(n) <- v
  | Reg.V _ -> raise (Stuck (Fmt.str "virtual register %a executed" Reg.pp r))

let operand_value t = function
  | Instr.Reg r -> reg_value t r
  | Instr.Imm n -> n

(* Executes one instruction of [th]; returns [`Continue] to keep running
   the same thread or [`Yield] when the PU must be rescheduled. *)
let step t th =
  let ins = Prog.instr th.prog th.pc in
  t.cycle <- t.cycle + 1;
  t.busy_cycles <- t.busy_cycles + 1;
  th.instrs <- th.instrs + 1;
  let next = th.pc + 1 in
  match ins with
  | Instr.Alu { op; dst; src1; src2 } ->
    set_reg t dst (Instr.eval_alu op (reg_value t src1) (operand_value t src2));
    th.pc <- next;
    `Continue
  | Instr.Mov { dst; src } ->
    th.moves <- th.moves + 1;
    set_reg t dst (reg_value t src);
    th.pc <- next;
    `Continue
  | Instr.Movi { dst; imm } ->
    set_reg t dst imm;
    th.pc <- next;
    `Continue
  | Instr.Load { dst; addr; off } ->
    let a = reg_value t addr + off in
    let v = Memory.read t.mem a in
    th.loads <- th.loads + 1;
    th.ctx_events <- th.ctx_events + 1;
    th.pc <- next;
    th.pending_writeback <- Some (dst, v);
    th.status <- Blocked { until = t.cycle + t.config.mem_latency };
    record t th.id Blocked_on_memory;
    `Yield
  | Instr.Store { src; addr; off } ->
    let a = reg_value t addr + off in
    let v = reg_value t src in
    Memory.write t.mem a v;
    th.store_trace_rev <- (a, v) :: th.store_trace_rev;
    th.stores <- th.stores + 1;
    th.ctx_events <- th.ctx_events + 1;
    th.pc <- next;
    th.status <- Blocked { until = t.cycle + t.config.mem_latency };
    record t th.id Blocked_on_memory;
    `Yield
  | Instr.Br { target } ->
    th.pc <- Prog.label_index th.prog target;
    `Continue
  | Instr.Brc { cond; src1; src2; target } ->
    if Instr.eval_cond cond (reg_value t src1) (operand_value t src2) then
      th.pc <- Prog.label_index th.prog target
    else th.pc <- next;
    `Continue
  | Instr.Ctx_switch ->
    th.ctx_events <- th.ctx_events + 1;
    th.pc <- next;
    record t th.id Yielded;
    `Yield
  | Instr.Nop ->
    th.pc <- next;
    `Continue
  | Instr.Halt ->
    th.status <- Done t.cycle;
    record t th.id Halted;
    `Yield

(* Round-robin dispatch: the next ready thread after [from]; if none is
   ready but some are blocked, time advances to the earliest wake-up. *)
let rec pick_next t from =
  let n = Array.length t.threads in
  let wake th =
    match th.status with
    | Blocked { until } when until <= t.cycle ->
      th.status <- Ready;
      th.ready_since <- max until t.cycle
    | Blocked _ | Ready | Done _ -> ()
  in
  Array.iter wake t.threads;
  let candidate = ref None in
  for k = 1 to n do
    let i = (from + k) mod n in
    if !candidate = None && t.threads.(i).status = Ready then
      candidate := Some i
  done;
  match !candidate with
  | Some i -> Some i
  | None ->
    let earliest =
      Array.fold_left
        (fun acc th ->
          match th.status with
          | Blocked { until } -> (
            match acc with Some e -> Some (min e until) | None -> Some until)
          | Ready | Done _ -> acc)
        None t.threads
    in
    (match earliest with
    | Some e ->
      t.cycle <- max t.cycle e;
      pick_next t from
    | None -> None)

let dispatch t i =
  let th = t.threads.(i) in
  (match th.pending_writeback with
  | Some (dst, v) ->
    set_reg t dst v;
    th.pending_writeback <- None
  | None -> ());
  th.wait_cycles <- th.wait_cycles + max 0 (t.cycle - th.ready_since);
  record t i Dispatched;
  t.dispatches <- t.dispatches + 1

let run ?(config = default_config) ?(mem_image = []) ?(timeline = false)
    progs =
  let t = create ~config ~mem_image ~timeline progs in
  (match pick_next t (Array.length t.threads - 1) with
  | None -> ()
  | Some first ->
    let current = ref first in
    dispatch t !current;
    let running = ref true in
    while !running do
      if t.cycle > t.config.max_cycles then
        raise (Stuck (Fmt.str "exceeded %d cycles" t.config.max_cycles));
      let th = t.threads.(!current) in
      match step t th with
      | `Continue -> ()
      | `Yield -> (
        match pick_next t !current with
        | Some next ->
          if next <> !current || th.status <> Ready then begin
            t.cycle <- t.cycle + t.config.ctx_switch_cost;
            t.switch_cycles <- t.switch_cycles + t.config.ctx_switch_cost
          end;
          (* a voluntary yield leaves the thread runnable from now *)
          if th.status = Ready then th.ready_since <- t.cycle;
          current := next;
          dispatch t next
        | None -> running := false)
    done);
  t

type thread_report = {
  name : string;
  completion : int option;  (* None if the thread never halted *)
  instructions : int;
  context_switches : int;
  load_count : int;
  store_count : int;
  move_count : int;
  wait_cycles : int;  (* runnable but queued behind other threads *)
  store_trace : (int * int) list;
}

type report = {
  total_cycles : int;
  busy_cycles : int;  (* some thread executing *)
  switch_cycles : int;  (* context-switch overhead *)
  idle_cycles : int;  (* everyone blocked on memory *)
  utilization : float;
  thread_reports : thread_report list;
}

let report t =
  {
    total_cycles = t.cycle;
    busy_cycles = t.busy_cycles;
    switch_cycles = t.switch_cycles;
    idle_cycles = max 0 (t.cycle - t.busy_cycles - t.switch_cycles);
    utilization =
      (if t.cycle = 0 then 0.
       else float_of_int t.busy_cycles /. float_of_int t.cycle);
    thread_reports =
      Array.to_list t.threads
      |> List.map (fun th ->
             {
               name = th.prog.Prog.name;
               completion = (match th.status with Done c -> Some c | Ready | Blocked _ -> None);
               instructions = th.instrs;
               context_switches = th.ctx_events;
               load_count = th.loads;
               store_count = th.stores;
               move_count = th.moves;
               wait_cycles = th.wait_cycles;
               store_trace = List.rev th.store_trace_rev;
             })
      |> fun l -> l;
  }

(* Renders the timeline as run intervals: one line per dispatch, with
   the cycles the thread held the PU and why it gave it up. *)
let pp_timeline ppf t =
  let name i = t.threads.(i).prog.Prog.name in
  let rec go = function
    | (c0, th, Dispatched) :: rest ->
      let rec until = function
        | (c1, th', ev) :: more when th' = th && ev <> Dispatched ->
          Some (c1, ev, more)
        | (_, _, Dispatched) :: _ as more -> (
          (* pre-empted view: next dispatch belongs to another thread *)
          match more with
          | (c1, _, _) :: _ -> Some (c1, Yielded, more)
          | [] -> None)
        | _ :: more -> until more
        | [] -> None
      in
      (match until rest with
      | Some (c1, ev, more) ->
        let why =
          match ev with
          | Blocked_on_memory -> "memory"
          | Yielded -> "yield"
          | Halted -> "halt"
          | Dispatched -> "switch"
        in
        Fmt.pf ppf "%8d..%-8d %-16s %s@." c0 c1 (name th) why;
        go more
      | None -> Fmt.pf ppf "%8d..        %-16s (running)@." c0 (name th))
    | _ :: rest -> go rest
    | [] -> ()
  in
  go (timeline t)

let pp_report ppf r =
  Fmt.pf ppf "total cycles: %d (busy %d, switch %d, idle %d; %.0f%% utilised)@."
    r.total_cycles r.busy_cycles r.switch_cycles r.idle_cycles
    (100. *. r.utilization);
  List.iter
    (fun tr ->
      Fmt.pf ppf
        "  %-16s completion=%a instrs=%d ctx=%d loads=%d stores=%d moves=%d wait=%d@."
        tr.name
        Fmt.(option ~none:(any "-") int)
        tr.completion tr.instructions tr.context_switches tr.load_count
        tr.store_count tr.move_count tr.wait_cycles)
    r.thread_reports
