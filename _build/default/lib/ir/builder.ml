(* Imperative builder eDSL for writing IR kernels.

   A builder accumulates instructions and label bindings, hands out fresh
   virtual registers and labels, and finally seals the result into a
   validated {!Prog.t}. Workload kernels are written against this API. *)

type t = {
  name : string;
  mutable rev_code : Instr.t list;
  mutable count : int;
  mutable labels : (Instr.label * int) list;
  mutable next_vreg : int;
  mutable next_label : int;
  named : (string, Reg.t) Hashtbl.t;
}

let create ~name =
  {
    name;
    rev_code = [];
    count = 0;
    labels = [];
    next_vreg = 0;
    next_label = 0;
    named = Hashtbl.create 16;
  }

let fresh b =
  let r = Reg.V b.next_vreg in
  b.next_vreg <- b.next_vreg + 1;
  r

let reg b name =
  match Hashtbl.find_opt b.named name with
  | Some r -> r
  | None ->
    let r = fresh b in
    Hashtbl.add b.named name r;
    r

let fresh_label ?(hint = "L") b =
  let l = Fmt.str "%s%d" hint b.next_label in
  b.next_label <- b.next_label + 1;
  l

let here b = b.count

let place b l = b.labels <- (l, b.count) :: b.labels

let label ?hint b =
  let l = fresh_label ?hint b in
  place b l;
  l

let emit b ins =
  b.rev_code <- ins :: b.rev_code;
  b.count <- b.count + 1

(* Instruction helpers. Binary helpers take an [Instr.operand] second
   source so kernels can mix registers and immediates freely. *)

let alu b op dst src1 src2 = emit b (Instr.Alu { op; dst; src1; src2 })
let add b dst src1 src2 = alu b Instr.Add dst src1 src2
let sub b dst src1 src2 = alu b Instr.Sub dst src1 src2
let and_ b dst src1 src2 = alu b Instr.And dst src1 src2
let or_ b dst src1 src2 = alu b Instr.Or dst src1 src2
let xor b dst src1 src2 = alu b Instr.Xor dst src1 src2
let shl b dst src1 src2 = alu b Instr.Shl dst src1 src2
let shr b dst src1 src2 = alu b Instr.Shr dst src1 src2
let mul b dst src1 src2 = alu b Instr.Mul dst src1 src2

let mov b dst src = emit b (Instr.Mov { dst; src })
let movi b dst imm = emit b (Instr.Movi { dst; imm })
let load b dst addr off = emit b (Instr.Load { dst; addr; off })
let store b src addr off = emit b (Instr.Store { src; addr; off })
let br b target = emit b (Instr.Br { target })

let brc b cond src1 src2 target =
  emit b (Instr.Brc { cond; src1; src2; target })

let ctx_switch b = emit b Instr.Ctx_switch
let nop b = emit b Instr.Nop
let halt b = emit b Instr.Halt

(* Expression-style helpers: allocate the destination. *)

let imm n = Instr.Imm n
let rge r = Instr.Reg r

let alu_ b op src1 src2 =
  let dst = fresh b in
  alu b op dst src1 src2;
  dst

let movi_ b n =
  let dst = fresh b in
  movi b dst n;
  dst

let load_ b addr off =
  let dst = fresh b in
  load b dst addr off;
  dst

(* Structured control flow. *)

let loop b ~iters body =
  (* Counts [iters] down to zero in a fresh register. *)
  let counter = fresh b in
  movi b counter iters;
  let top = label ~hint:"loop" b in
  body ();
  sub b counter counter (imm 1);
  brc b Instr.Gt counter (imm 0) top

let if_ b cond src1 src2 ~then_ ~else_ =
  (* Branches to [then_] when the condition holds, mirroring the paper's
     [if( )br L1] examples. *)
  let l_then = fresh_label ~hint:"then" b in
  let l_join = fresh_label ~hint:"join" b in
  brc b cond src1 src2 l_then;
  else_ ();
  br b l_join;
  place b l_then;
  then_ ();
  place b l_join

let finish b =
  Prog.make ~name:b.name ~code:(List.rev b.rev_code) ~labels:b.labels
