(** Registers of the NPRA intermediate representation.

    A register is either a {e virtual} register — an unbounded compiler
    temporary used before register allocation — or a {e physical} register
    indexing the processing unit's shared general-purpose register file
    (128 GPRs on the modelled IXP1200-class machine). *)

type t =
  | V of int  (** virtual register, compiler temporary *)
  | P of int  (** physical GPR in the shared register file *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_virtual : t -> bool
val is_physical : t -> bool

val number : t -> int
(** [number r] is the index of [r], regardless of its kind. *)

val pp : t Fmt.t
(** Prints [v42] for virtual and [r42] for physical registers. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
