(** Instructions of the NPRA intermediate representation.

    The instruction set models the programmer-visible core of an IXP-class
    micro-engine:

    - single-cycle ALU operations, moves and branches;
    - a voluntary [Ctx_switch] that yields the processing unit;
    - long-latency [Load]/[Store] memory operations that relinquish the
      processing unit while the access is in flight (switch-on-issue).

    Following the paper's "transfer register" rule, the context-switch
    boundary of a [Load] sits between the issue of the read and the
    write-back of its destination, so the destination register is {e not}
    live across the load's own context-switch boundary. *)

type alu_op = Add | Sub | And | Or | Xor | Shl | Shr | Mul

type cond = Eq | Ne | Lt | Ge | Gt | Le

type operand =
  | Reg of Reg.t
  | Imm of int

type label = string

type t =
  | Alu of { op : alu_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Mov of { dst : Reg.t; src : Reg.t }
  | Movi of { dst : Reg.t; imm : int }
  | Load of { dst : Reg.t; addr : Reg.t; off : int }
      (** [dst <- mem\[addr+off\]]; context-switches while in flight. *)
  | Store of { src : Reg.t; addr : Reg.t; off : int }
      (** [mem\[addr+off\] <- src]; context-switches while in flight. *)
  | Br of { target : label }
  | Brc of { cond : cond; src1 : Reg.t; src2 : operand; target : label }
  | Ctx_switch  (** voluntary yield; only the PC is saved *)
  | Nop
  | Halt

val alu_op_name : alu_op -> string
val cond_name : cond -> string

val eval_alu : alu_op -> int -> int -> int
(** Arithmetic on OCaml [int]s; shifts mask their count to 5 bits. *)

val eval_cond : cond -> int -> int -> bool

val defs : t -> Reg.t list
(** Registers written by the instruction. *)

val uses : t -> Reg.t list
(** Registers read by the instruction. *)

val causes_ctx_switch : t -> bool
(** True for [Ctx_switch], [Load] and [Store] — the instructions whose
    execution yields the processing unit (context-switch boundaries). *)

val falls_through : t -> bool
(** False only for [Br] and [Halt]. *)

val branch_target : t -> label option
val is_branch : t -> bool

val map_regs : (Reg.t -> Reg.t) -> t -> t
(** Applies a substitution to every register operand. *)

val map_regs2 : def:(Reg.t -> Reg.t) -> use:(Reg.t -> Reg.t) -> t -> t
(** Like {!map_regs} with separate substitutions for defined and used
    operands — needed when a renaming depends on the occurrence. *)

val pp_operand : operand Fmt.t
val pp : t Fmt.t
val to_string : t -> string
