(* Registers of the NPRA intermediate representation.

   Before register allocation a program refers to virtual registers [V n];
   after allocation every reference is a physical register [P n] indexing
   the processing unit's shared general-purpose register file. *)

type t =
  | V of int  (** virtual register, compiler temporary *)
  | P of int  (** physical GPR in the shared register file *)

let compare (a : t) (b : t) =
  match a, b with
  | V x, V y | P x, P y -> Int.compare x y
  | V _, P _ -> -1
  | P _, V _ -> 1

let equal a b = compare a b = 0

let hash = Hashtbl.hash

let is_virtual = function V _ -> true | P _ -> false
let is_physical = function P _ -> true | V _ -> false

let number = function V n | P n -> n

let pp ppf = function
  | V n -> Fmt.pf ppf "v%d" n
  | P n -> Fmt.pf ppf "r%d" n

let to_string r = Fmt.str "%a" pp r

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)
