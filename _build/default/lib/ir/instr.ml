(* Instructions of the NPRA intermediate representation.

   The instruction set models the programmer-visible core of an IXP-class
   micro-engine: single-cycle ALU operations and branches, a voluntary
   [Ctx_switch], and long-latency [Load]/[Store] memory operations that
   relinquish the processing unit while the access is in flight.

   The context-switch semantics follow the paper's model: the switch point
   of a [Load] sits between the issue of the read and the write-back of the
   destination ("transfer register" rule), so the destination is not live
   across the load's own context-switch boundary. *)

type alu_op =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Mul

type cond =
  | Eq
  | Ne
  | Lt
  | Ge
  | Gt
  | Le

type operand =
  | Reg of Reg.t
  | Imm of int

type label = string

type t =
  | Alu of { op : alu_op; dst : Reg.t; src1 : Reg.t; src2 : operand }
  | Mov of { dst : Reg.t; src : Reg.t }
  | Movi of { dst : Reg.t; imm : int }
  | Load of { dst : Reg.t; addr : Reg.t; off : int }
  | Store of { src : Reg.t; addr : Reg.t; off : int }
  | Br of { target : label }
  | Brc of { cond : cond; src1 : Reg.t; src2 : operand; target : label }
  | Ctx_switch
  | Nop
  | Halt

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Mul -> "mul"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"

let eval_alu op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 31)
  | Shr -> a lsr (b land 31)
  | Mul -> a * b

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Gt -> a > b
  | Le -> a <= b

let defs = function
  | Alu { dst; _ } | Mov { dst; _ } | Movi { dst; _ } | Load { dst; _ } ->
    [ dst ]
  | Store _ | Br _ | Brc _ | Ctx_switch | Nop | Halt -> []

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

let uses = function
  | Alu { src1; src2; _ } -> src1 :: operand_uses src2
  | Mov { src; _ } -> [ src ]
  | Movi _ -> []
  | Load { addr; _ } -> [ addr ]
  | Store { src; addr; _ } -> [ src; addr ]
  | Br _ | Ctx_switch | Nop | Halt -> []
  | Brc { src1; src2; _ } -> src1 :: operand_uses src2

(* An instruction "causes a context switch" when executing it gives up the
   CPU: voluntary switches and long-latency memory operations. *)
let causes_ctx_switch = function
  | Ctx_switch | Load _ | Store _ -> true
  | Alu _ | Mov _ | Movi _ | Br _ | Brc _ | Nop | Halt -> false

(* Control can fall through to the next instruction, except after an
   unconditional branch or halt. *)
let falls_through = function
  | Br _ | Halt -> false
  | Alu _ | Mov _ | Movi _ | Load _ | Store _ | Brc _ | Ctx_switch | Nop ->
    true

let branch_target = function
  | Br { target } | Brc { target; _ } -> Some target
  | Alu _ | Mov _ | Movi _ | Load _ | Store _ | Ctx_switch | Nop | Halt ->
    None

let is_branch i = Option.is_some (branch_target i)

let map_regs f instr =
  match instr with
  | Alu { op; dst; src1; src2 } ->
    let src2 = match src2 with Reg r -> Reg (f r) | Imm _ as o -> o in
    Alu { op; dst = f dst; src1 = f src1; src2 }
  | Mov { dst; src } -> Mov { dst = f dst; src = f src }
  | Movi { dst; imm } -> Movi { dst = f dst; imm }
  | Load { dst; addr; off } -> Load { dst = f dst; addr = f addr; off }
  | Store { src; addr; off } -> Store { src = f src; addr = f addr; off }
  | Brc { cond; src1; src2; target } ->
    let src2 = match src2 with Reg r -> Reg (f r) | Imm _ as o -> o in
    Brc { cond; src1 = f src1; src2; target }
  | Br _ | Ctx_switch | Nop | Halt -> instr

let map_regs2 ~def ~use instr =
  match instr with
  | Alu { op; dst; src1; src2 } ->
    let src2 = match src2 with Reg r -> Reg (use r) | Imm _ as o -> o in
    Alu { op; dst = def dst; src1 = use src1; src2 }
  | Mov { dst; src } -> Mov { dst = def dst; src = use src }
  | Movi { dst; imm } -> Movi { dst = def dst; imm }
  | Load { dst; addr; off } -> Load { dst = def dst; addr = use addr; off }
  | Store { src; addr; off } -> Store { src = use src; addr = use addr; off }
  | Brc { cond; src1; src2; target } ->
    let src2 = match src2 with Reg r -> Reg (use r) | Imm _ as o -> o in
    Brc { cond; src1 = use src1; src2; target }
  | Br _ | Ctx_switch | Nop | Halt -> instr

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm n -> Fmt.int ppf n

let pp ppf = function
  | Alu { op; dst; src1; src2 } ->
    Fmt.pf ppf "%s %a, %a, %a" (alu_op_name op) Reg.pp dst Reg.pp src1
      pp_operand src2
  | Mov { dst; src } -> Fmt.pf ppf "mov %a, %a" Reg.pp dst Reg.pp src
  | Movi { dst; imm } -> Fmt.pf ppf "movi %a, %d" Reg.pp dst imm
  | Load { dst; addr; off } ->
    Fmt.pf ppf "load %a, [%a+%d]" Reg.pp dst Reg.pp addr off
  | Store { src; addr; off } ->
    Fmt.pf ppf "store %a, [%a+%d]" Reg.pp src Reg.pp addr off
  | Br { target } -> Fmt.pf ppf "br %s" target
  | Brc { cond; src1; src2; target } ->
    Fmt.pf ppf "b%s %a, %a, %s" (cond_name cond) Reg.pp src1 pp_operand src2
      target
  | Ctx_switch -> Fmt.string ppf "ctx_switch"
  | Nop -> Fmt.string ppf "nop"
  | Halt -> Fmt.string ppf "halt"

let to_string i = Fmt.str "%a" pp i
