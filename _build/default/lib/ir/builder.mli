(** Imperative builder eDSL for writing IR kernels.

    A builder accumulates instructions and label bindings, hands out fresh
    virtual registers and labels, and finally seals the result into a
    validated {!Prog.t}:

    {[
      let b = Builder.create ~name:"demo" in
      let x = Builder.fresh b in
      Builder.movi b x 7;
      Builder.loop b ~iters:10 (fun () -> Builder.ctx_switch b);
      Builder.halt b;
      let prog = Builder.finish b
    ]} *)

type t

val create : name:string -> t

val fresh : t -> Reg.t
(** A fresh virtual register. *)

val reg : t -> string -> Reg.t
(** [reg b name] is the virtual register memoized under [name]; the first
    call allocates it. Lets kernels refer to named state like ["sum"]. *)

val fresh_label : ?hint:string -> t -> Instr.label
val here : t -> int

val place : t -> Instr.label -> unit
(** Binds a label at the current position. *)

val label : ?hint:string -> t -> Instr.label
(** Allocates a fresh label and binds it at the current position. *)

val emit : t -> Instr.t -> unit

val alu : t -> Instr.alu_op -> Reg.t -> Reg.t -> Instr.operand -> unit
val add : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val sub : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val and_ : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val or_ : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val xor : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val shl : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val shr : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val mul : t -> Reg.t -> Reg.t -> Instr.operand -> unit
val mov : t -> Reg.t -> Reg.t -> unit
val movi : t -> Reg.t -> int -> unit
val load : t -> Reg.t -> Reg.t -> int -> unit
val store : t -> Reg.t -> Reg.t -> int -> unit
val br : t -> Instr.label -> unit
val brc : t -> Instr.cond -> Reg.t -> Instr.operand -> Instr.label -> unit
val ctx_switch : t -> unit
val nop : t -> unit
val halt : t -> unit

val imm : int -> Instr.operand
val rge : Reg.t -> Instr.operand
(** Operand injections: immediate and register. *)

val alu_ : t -> Instr.alu_op -> Reg.t -> Instr.operand -> Reg.t
val movi_ : t -> int -> Reg.t
val load_ : t -> Reg.t -> int -> Reg.t
(** Expression-style variants that allocate and return the destination. *)

val loop : t -> iters:int -> (unit -> unit) -> unit
(** [loop b ~iters body] emits [body] inside a counted loop that runs
    [iters] times (count-down counter in a fresh register). *)

val if_ :
  t ->
  Instr.cond ->
  Reg.t ->
  Instr.operand ->
  then_:(unit -> unit) ->
  else_:(unit -> unit) ->
  unit
(** Two-armed conditional joining after both arms. *)

val finish : t -> Prog.t
(** Seals and validates the program.
    @raise Prog.Invalid on malformed control flow. *)
