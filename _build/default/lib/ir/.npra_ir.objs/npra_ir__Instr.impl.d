lib/ir/instr.ml: Fmt Option Reg
