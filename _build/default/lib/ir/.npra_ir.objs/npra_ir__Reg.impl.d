lib/ir/reg.ml: Fmt Hashtbl Int Map Set
