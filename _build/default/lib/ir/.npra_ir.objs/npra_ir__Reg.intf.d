lib/ir/reg.mli: Fmt Map Set
