lib/ir/prog.mli: Fmt Instr Reg
