lib/ir/builder.ml: Fmt Hashtbl Instr List Prog Reg
