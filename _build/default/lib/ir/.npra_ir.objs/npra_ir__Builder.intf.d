lib/ir/builder.mli: Instr Prog Reg
