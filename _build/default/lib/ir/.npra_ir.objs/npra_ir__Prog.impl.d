lib/ir/prog.ml: Array Fmt Hashtbl Instr List Reg
