examples/packet_scheduler.ml: Array Assign Context Estimate Fmt Inter List Npra_cfg Npra_core Npra_regalloc Npra_sim Npra_workloads Pipeline Registry Workload
