examples/asm_pipeline.ml: Fmt List Npra_asm Npra_core Npra_ir Npra_regalloc Npra_sim Pipeline String
