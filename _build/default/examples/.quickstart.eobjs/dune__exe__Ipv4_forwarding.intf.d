examples/ipv4_forwarding.mli:
