examples/ipv4_forwarding.ml: Array Fmt List Npra_core Npra_regalloc Npra_sim Npra_workloads Pipeline Registry String Workload
