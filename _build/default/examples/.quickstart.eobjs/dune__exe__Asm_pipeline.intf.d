examples/asm_pipeline.mli:
