examples/npc_firewall.ml: Fmt List Npra_core Npra_ir Npra_npc Npra_regalloc Npra_sim Pipeline String
