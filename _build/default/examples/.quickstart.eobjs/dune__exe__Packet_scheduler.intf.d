examples/packet_scheduler.mli:
