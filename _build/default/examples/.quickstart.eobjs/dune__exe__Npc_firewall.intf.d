examples/npc_firewall.mli:
