examples/quickstart.ml: Assign Builder Fmt Instr Inter List Npra_asm Npra_core Npra_ir Npra_regalloc Npra_sim Pipeline Verify
