examples/quickstart.mli:
