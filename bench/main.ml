(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§9) and times the allocator phases with Bechamel.

   Usage:
     dune exec bench/main.exe              all experiments + timings
     dune exec bench/main.exe table1       one experiment
     dune exec bench/main.exe -- dataflow --json BENCH_dataflow.json

   Flags (the shared spec in Cli):
     --json PATH   overrides the selected subcommand's JSON output
                   path; valid only when the selection contains exactly
                   one JSON-writing subcommand
     --quick       tiny Bechamel quota and short traffic runs, for CI
     --seed N      replayable seed for the randomised harnesses; each
                   keeps its historical default when absent
     --jobs N      worker domains for the pooled harnesses (default 1).
                   Results are deterministic: only the wall_clock block
                   of the JSON reports depends on N

   Absolute cycle numbers come from our machine model, not the IXP1200
   Developer Workbench, so EXPERIMENTS.md compares shapes and ratios
   against the paper, not raw values. *)

open Npra_cfg
open Npra_regalloc
open Npra_workloads
open Npra_core

(* ------------------------------------------------------------------ *)
(* Experiment reproduction.                                            *)

let run_table1 () =
  Report.print (Experiments.table1_report (Experiments.table1 ()));
  Fmt.pr
    "@.paper: 11 benchmarks, ~10%% CTX instructions, MinR/MinPR below \
     MaxR/MaxPR.@."

let run_fig14 () =
  let rows = Experiments.fig14 () in
  Report.print (Experiments.fig14_report rows);
  Fmt.pr "@.average total register saving: %.1f%% (paper: ~24%%)@."
    (Experiments.fig14_average rows)

let run_table2 () =
  Report.print (Experiments.table2_report (Experiments.table2 ()));
  Fmt.pr "@.paper: move overhead mostly within 10%% of code size.@."

let run_table3 () =
  let rows = Experiments.table3 () in
  Report.print (Experiments.table3_report rows);
  Fmt.pr
    "@.paper: 18-24%% speed-up for critical threads (md5, wraps), 1-4%% \
     degradation for the others.@.";
  List.iter
    (fun row ->
      List.iter
        (fun t ->
          if t.Experiments.change_pct < -5. then
            Fmt.pr "  %-12s speed-up %.1f%%@." t.Experiments.t3_name
              (100.
              *. ((t.Experiments.cyc_spill /. t.Experiments.cyc_sharing) -. 1.)))
        row.Experiments.threads)
    rows

(* ------------------------------------------------------------------ *)
(* Ablation: design choices called out in DESIGN.md.                   *)

(* Ablation 1: how much of Figure 14's saving comes from sharing versus
   merely balancing private blocks (all registers a thread uses counted
   private)? *)
let ablation_sharing () =
  Fmt.pr "@.== Ablation: shared registers vs private-only balancing ==@.";
  Fmt.pr "%-12s  %9s  %9s  %9s@." "benchmark" "4*chaitin" "balanced"
    "no-shared";
  List.iter
    (fun spec ->
      let w = Registry.instantiate spec ~slot:0 in
      let prog = Webs.rename w.Workload.prog in
      let chaitin = Chaitin.color_count prog in
      match Inter.tighten_zero_cost ~nreg:128 [ prog ] with
      | Error (`Infeasible m) ->
        Fmt.pr "%-12s  %9d  (infeasible: %s)@." spec.Workload.id (4 * chaitin) m
      | Ok inter ->
        let th = inter.Inter.threads.(0) in
        (* no-shared: every register a thread touches must be private *)
        let no_shared = 4 * (th.Inter.pr + th.Inter.sr) in
        Fmt.pr "%-12s  %9d  %9d  %9d@." spec.Workload.id (4 * chaitin)
          ((4 * th.Inter.pr) + th.Inter.sr)
          no_shared)
    Registry.all

(* Ablation 2: register-file size sweep — where does the balanced
   allocator stop fitting, and how does move cost grow as the file
   shrinks? The mix uses the kernels whose estimated upper bounds sit
   well above their pressure floors (drr, the forwarding halves), so the
   squeeze region where splitting pays for registers is visible. *)
let ablation_nreg () =
  Fmt.pr
    "@.== Ablation: register-file size sweep (drr + l2l3fwd rx/tx + url) ==@.";
  let ws =
    List.mapi
      (fun i id -> Registry.instantiate (Registry.find_exn id) ~slot:i)
      [ "drr"; "l2l3fwd_rx"; "l2l3fwd_tx"; "url" ]
  in
  let progs = List.map (fun w -> Webs.rename w.Workload.prog) ws in
  Fmt.pr "%6s  %8s  %8s@." "nreg" "fits" "moves";
  List.iter
    (fun nreg ->
      match Inter.allocate ~nreg progs with
      | Ok inter -> Fmt.pr "%6d  %8s  %8d@." nreg "yes" (Inter.total_moves inter)
      | Error (`Infeasible _) -> Fmt.pr "%6d  %8s  %8s@." nreg "no" "-")
    [ 64; 56; 52; 50; 48; 46; 45; 44; 43; 42 ]

(* Ablation 3: static move count versus the loop-depth-weighted dynamic
   estimate at the Table-2 operating point. *)
let ablation_cost () =
  Fmt.pr "@.== Ablation: static vs weighted move placement (table 2 point) ==@.";
  Fmt.pr "%-12s  %8s  %10s@." "benchmark" "#moves" "dyn-weight";
  List.iter
    (fun id ->
      let w = Registry.instantiate (Registry.find_exn id) ~slot:0 in
      let prog = Webs.rename w.Workload.prog in
      let loops = Loops.compute prog in
      let ctx = Context.create prog in
      let ctx, b = Estimate.run ctx in
      let target_pr = b.Estimate.min_pr in
      let target_sr = max 0 (b.Estimate.min_r - target_pr) in
      match
        Intra.reduce_to ctx ~pr:b.Estimate.max_pr ~r:b.Estimate.max_r
          ~target_pr ~target_sr
      with
      | None -> ()
      | Some red ->
        Fmt.pr "%-12s  %8d  %10d@." id red.Intra.cost
          (Context.weighted_move_count red.Intra.ctx (Loops.depth loops)))
    [ "md5"; "fir2dim"; "l2l3fwd_rx"; "l2l3fwd_tx"; "wraps_tx" ]

(* Ablation 4: memory-latency sweep — how the headline Table-3 speedup
   scales with the cost of a memory access. Spills hurt in proportion to
   the latency they add, so the balanced allocator's advantage should
   grow with it (SRAM ~20 cycles on the IXP1200; SDRAM ~40). *)
let ablation_latency () =
  Fmt.pr "@.== Ablation: memory latency sweep (md5 x2 + fir2dim x2) ==@.";
  let ws =
    List.mapi
      (fun i id -> Registry.instantiate (Registry.find_exn id) ~slot:i)
      [ "md5"; "md5"; "fir2dim"; "fir2dim" ]
  in
  let progs = List.map (fun w -> w.Workload.prog) ws in
  let iters = List.map (fun w -> w.Workload.iters) ws in
  let mem_image = List.concat_map (fun w -> w.Workload.mem_image) ws in
  let spill_bases = List.map Workload.spill_base ws in
  let base = Pipeline.baseline ~nreg:128 ~spill_bases progs in
  let bal = Pipeline.balanced_exn ~nreg:128 ~spill_bases progs in
  Fmt.pr "%8s  %12s  %12s  %9s@." "latency" "md5(spill)" "md5(share)"
    "speedup";
  List.iter
    (fun mem_latency ->
      let config = { Npra_sim.Machine.default_config with mem_latency } in
      let cyc progs =
        let report =
          Npra_sim.Machine.report
            (Npra_sim.Machine.run ~config ~mem_image progs)
        in
        List.nth (Pipeline.cycles_per_iteration report iters) 0
      in
      let a = cyc base.Pipeline.base_programs
      and b = cyc bal.Pipeline.programs in
      Fmt.pr "%8d  %12.1f  %12.1f  %8.1f%%@." mem_latency a b
        (100. *. ((a /. b) -. 1.)))
    [ 5; 10; 20; 40; 80 ]

let run_ablation () =
  ablation_sharing ();
  ablation_nreg ();
  ablation_cost ();
  ablation_latency ()

(* ------------------------------------------------------------------ *)
(* Bechamel timing of the allocator phases: one timed benchmark per    *)
(* reproduced table, plus the compiler phases on the heaviest kernel.  *)

let bechamel_tests () =
  let open Bechamel in
  let md5_prog =
    let w = Registry.instantiate (Registry.find_exn "md5") ~slot:0 in
    Webs.rename w.Workload.prog
  in
  let staged = Staged.stage in
  [
    Test.make ~name:"table1:analysis-per-kernel"
      (staged (fun () ->
           let ctx = Context.create md5_prog in
           let _ = Estimate.run ctx in
           Nsr.compute md5_prog));
    Test.make ~name:"fig14:zero-cost-tighten(md5)"
      (staged (fun () -> Inter.tighten_zero_cost ~nreg:128 [ md5_prog ]));
    Test.make ~name:"table2:reduce-to-min(fir2dim)"
      (staged
         (let w = Registry.instantiate (Registry.find_exn "fir2dim") ~slot:0 in
          let prog = Webs.rename w.Workload.prog in
          fun () ->
            let ctx = Context.create prog in
            let ctx, b = Estimate.run ctx in
            Intra.reduce_to ctx ~pr:b.Estimate.max_pr ~r:b.Estimate.max_r
              ~target_pr:b.Estimate.min_pr
              ~target_sr:(max 0 (b.Estimate.min_r - b.Estimate.min_pr))));
    Test.make ~name:"table3:balanced-pipeline(md5+fir2dim)"
      (staged
         (let progs =
            List.mapi
              (fun i id ->
                (Registry.instantiate (Registry.find_exn id) ~slot:i)
                  .Workload.prog)
              [ "md5"; "fir2dim" ]
          in
          fun () -> Pipeline.balanced ~nreg:128 progs));
    Test.make ~name:"phase:liveness(md5)"
      (staged (fun () -> Liveness.compute md5_prog));
    Test.make ~name:"phase:points(md5)"
      (staged (fun () -> Points.compute md5_prog));
    Test.make ~name:"phase:chaitin-k32(md5)"
      (staged (fun () -> Chaitin.allocate ~k:32 ~spill_base:768 md5_prog));
    Test.make ~name:"phase:simulate(md5-alone)"
      (staged
         (let w = Registry.instantiate (Registry.find_exn "md5") ~slot:0 in
          let prog = Webs.rename w.Workload.prog in
          let res = Chaitin.allocate ~k:128 ~spill_base:768 prog in
          let layout = Assign.fixed_partition ~nreg:128 ~nthd:1 in
          let phys =
            Rewrite.apply_map res.Chaitin.prog res.Chaitin.coloring
              ~reg_of_color:(Assign.reg_of_color layout ~thread:0)
          in
          let image = w.Workload.mem_image in
          fun () -> Npra_sim.Machine.run ~mem_image:image [ phys ]));
  ]

let run_timing () =
  let open Bechamel in
  Fmt.pr "@.== Bechamel timings ==@.";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let tbl = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Fmt.pr "  %-40s %14.1f ns/run@." name t
          | Some _ | None -> Fmt.pr "  %-40s (no estimate)@." name)
        tbl)
    (List.map
       (fun t -> Test.make_grouped ~name:"npra" [ t ])
       (bechamel_tests ()))

(* ------------------------------------------------------------------ *)
(* Dataflow engine benchmark: dense bitset liveness vs the Reg.Set     *)
(* reference oracle, on every workload kernel plus a ~10k-instruction  *)
(* synthetic program. Writes the BENCH_dataflow.json trajectory file.  *)

(* The shared flags arrive pre-parsed in a {!Cli.opts}: --quick, --seed
   (each randomised harness keeps its historical default when absent),
   --jobs (the pool contract keeps every report identical at any job
   count; only wall-clock observations change), and --json (resolved
   per subcommand by {!Cli.json_path}). *)
let pool (o : Cli.opts) = Npra_par.Pool.create ~jobs:o.Cli.jobs ()

(* Every BENCH_*.json carries a wall_clock block recording how long the
   harness took and at how many jobs — appended by the harness, outside
   the deterministic payload, so same-seed runs at different job counts
   differ only here. [splice_wall_clock] grafts the block into a JSON
   object serialised by a library (fuzz stats, fault matrix) without
   the library knowing about wall clocks. *)
let wall_clock_json ~jobs ~seconds =
  Fmt.str {|"wall_clock": {"jobs": %d, "seconds": %.3f}|} jobs seconds

let splice_wall_clock ~jobs ~seconds json =
  match String.rindex_opt json '}' with
  | None -> json
  | Some i ->
    String.sub json 0 i
    ^ Fmt.str ",\n  %s\n" (wall_clock_json ~jobs ~seconds)
    ^ String.sub json i (String.length json - i)

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

type df_case = { df_name : string; median_ns : float; samples : int }

let median_ns_per_run ~quick test =
  let open Bechamel in
  let quota = Time.second (if quick then 0.005 else 0.5) in
  let cfg =
    Benchmark.cfg ~limit:(if quick then 5 else 200) ~quota ~kde:None ()
  in
  let raws = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let label = Measure.label Toolkit.Instance.monotonic_clock in
  let per_run =
    Hashtbl.fold
      (fun _ b acc ->
        Array.fold_left
          (fun acc raw ->
            let runs = Measurement_raw.run raw in
            if runs > 0. then (Measurement_raw.get ~label raw /. runs) :: acc
            else acc)
          acc b.Benchmark.lr)
      raws []
    |> List.sort compare |> Array.of_list
  in
  let n = Array.length per_run in
  if n = 0 then (Float.nan, 0)
  else
    let median =
      if n mod 2 = 1 then per_run.(n / 2)
      else (per_run.((n / 2) - 1) +. per_run.(n / 2)) /. 2.
    in
    (median, n)

let dataflow_programs () =
  let kernels =
    List.map
      (fun spec ->
        ( spec.Workload.id,
          (Registry.instantiate spec ~slot:0).Workload.prog ))
      Registry.all
  in
  kernels @ [ ("synthetic10k", Synthetic.large ~size:10_000 ()) ]

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_dataflow_json path cases speedups ~jobs ~seconds =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  let pp_case ppf c =
    Fmt.pf ppf {|    {"name": "%s", "median_ns_per_run": %.1f, "samples": %d}|}
      (json_escape c.df_name) c.median_ns c.samples
  in
  let pp_speedup ppf (id, s) =
    Fmt.pf ppf {|    "%s": %.2f|} (json_escape id) s
  in
  Fmt.pf ppf
    "{@\n  \"benchmark\": \"dataflow\",@\n  \"unit\": \"ns/run\",@\n  \
     \"cases\": [@\n%a@\n  ],@\n  \"speedup_dense_over_reference\": {@\n%a@\n  \
     },@\n  %s@\n}@."
    Fmt.(list ~sep:(any ",@\n") pp_case)
    cases
    Fmt.(list ~sep:(any ",@\n") pp_speedup)
    speedups
    (wall_clock_json ~jobs ~seconds);
  close_out oc

let run_dataflow (o : Cli.opts) ~json =
  let json_path = Option.get json in
  (* Fail on an unwritable JSON path before the minutes-long run, not
     after it. *)
  (match open_out_gen [ Open_append; Open_creat ] 0o644 json_path with
  | oc -> close_out oc
  | exception Sys_error msg ->
    Fmt.epr "cannot write %s: %s@." json_path msg;
    exit 2);
  Fmt.pr "@.== Dataflow: dense bitset engine vs Reg.Set reference ==@.";
  let open Bechamel in
  let programs = dataflow_programs () in
  let t0 = Unix.gettimeofday () in
  Fmt.pr "%-24s %14s %14s %9s@." "program" "dense ns" "reference ns" "speedup";
  let cases, speedups =
    List.fold_left
      (fun (cases, speedups) (id, prog) ->
        let time name f =
          let median, samples =
            median_ns_per_run ~quick:o.Cli.quick
              (Test.make ~name (Staged.stage f))
          in
          { df_name = name; median_ns = median; samples }
        in
        let dense =
          time (Fmt.str "liveness-dense:%s" id) (fun () ->
              Npra_cfg.Liveness.compute prog)
        in
        let reference =
          time (Fmt.str "liveness-reference:%s" id) (fun () ->
              Npra_cfg.Liveness.compute_reference prog)
        in
        let speedup = reference.median_ns /. dense.median_ns in
        Fmt.pr "%-24s %14.1f %14.1f %8.2fx@." id dense.median_ns
          reference.median_ns speedup;
        (cases @ [ dense; reference ], speedups @ [ (id, speedup) ]))
      ([], []) programs
  in
  write_dataflow_json json_path cases speedups ~jobs:o.Cli.jobs
    ~seconds:(Unix.gettimeofday () -. t0);
  Fmt.pr "wrote %s@." json_path

(* ------------------------------------------------------------------ *)
(* Fault-injection detection matrix: every (kernel x fault) cell        *)
(* through static Verify and the sentinel-armed simulator. Writes       *)
(* BENCH_faults.json and fails the process if any injected fault goes   *)
(* undetected — the robustness gate CI leans on.                        *)

let run_faults (o : Cli.opts) ~json =
  let faults_json = Option.get json in
  let specs =
    if o.Cli.quick then
      (* a light smoke subset; wraps_rx exercises the Chaitin fallback *)
      List.filter
        (fun s -> List.mem s.Workload.id [ "crc32"; "url"; "wraps_rx" ])
        Registry.all
    else Registry.all
  in
  Fmt.pr "@.== Fault injection: static verify + runtime sentinel (%d jobs) ==@."
    o.Cli.jobs;
  let m, seconds =
    timed (fun () ->
        Npra_fault.Driver.run ~pool:(pool o) ?seed:o.Cli.seed ~specs ())
  in
  Fmt.pr "%a" Npra_fault.Driver.pp m;
  Fmt.pr "wall clock: %.3fs at %d jobs@." seconds o.Cli.jobs;
  let oc = open_out faults_json in
  output_string oc
    (splice_wall_clock ~jobs:o.Cli.jobs ~seconds (Npra_fault.Driver.to_json m));
  close_out oc;
  Fmt.pr "wrote %s@." faults_json;
  if not (Npra_fault.Driver.all_detected m) then begin
    Fmt.epr
      "FAULT HARNESS FAILURE: an injected fault went undetected, or the \
       sentinel trapped on a clean system@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Never-crash fuzzing: random bytes, mutated kernels and round-trips   *)
(* through the total frontends and the full pipeline. Writes            *)
(* BENCH_fuzz.json and fails the process on any uncaught exception,     *)
(* any wall-clock hang, or any seeded crasher that is not rejected      *)
(* with structured diagnostics.                                         *)

let run_fuzz (o : Cli.opts) ~json =
  let fuzz_json = Option.get json in
  let open Npra_fuzz in
  let count = if o.Cli.quick then 1_500 else 12_000 in
  Fmt.pr
    "@.== Fuzz: never-crash contract over both frontends (%d inputs, %d jobs) \
     ==@."
    count o.Cli.jobs;
  let stats, seconds =
    timed (fun () ->
        Fuzz.run ~pool:(pool o)
          ~seed:(Option.value o.Cli.seed ~default:42)
          ~count ())
  in
  Fmt.pr "inputs          %8d@." stats.Fuzz.inputs;
  Fmt.pr "  rejected      %8d  (structured diagnostics)@." stats.Fuzz.rejected;
  Fmt.pr "  accepted      %8d  (allocated, verified, simulated)@."
    stats.Fuzz.accepted;
  Fmt.pr "  alloc failed  %8d  (degradation chain exhausted)@."
    stats.Fuzz.alloc_failed;
  Fmt.pr "  verify failed %8d@." stats.Fuzz.verify_failed;
  Fmt.pr "  budget stops  %8d  (cycle limit / deadlock, structured)@."
    stats.Fuzz.budget_stopped;
  Fmt.pr "crashes         %8d@." stats.Fuzz.crashes;
  Fmt.pr "hangs           %8d  (slowest input %.3fs)@." stats.Fuzz.hangs
    stats.Fuzz.slowest_s;
  List.iter
    (fun (lang, src, exn) ->
      Fmt.epr "CRASH [%s]: %s@.  input: %s@." (Fuzz.lang_name lang) exn src)
    stats.Fuzz.crash_reports;
  let unrejected = Fuzz.crashers_rejected () in
  List.iter
    (fun (lang, src, why) ->
      Fmt.epr "CRASHER NOT REJECTED [%s]: %s@.  input: %S@."
        (Fuzz.lang_name lang) why src)
    unrejected;
  Fmt.pr "wall clock: %.3fs at %d jobs@." seconds o.Cli.jobs;
  let oc = open_out fuzz_json in
  output_string oc
    (splice_wall_clock ~jobs:o.Cli.jobs ~seconds (Fuzz.to_json stats));
  close_out oc;
  Fmt.pr "wrote %s@." fuzz_json;
  if not (Fuzz.ok stats && unrejected = []) then begin
    Fmt.epr
      "FUZZ HARNESS FAILURE: the never-crash contract was violated (see \
       reports above)@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Packet-traffic throughput: the paper's headline claim, measured as   *)
(* sustained packets/cycle instead of cycles/iteration. Each Table-3    *)
(* mix runs twice — fixed-partition Chaitin vs the balanced allocator,  *)
(* from the same Pipeline entry points — under byte-identical traffic   *)
(* on a bank of micro-engines. Writes BENCH_throughput.json and fails   *)
(* the process if any engine faults (sentinel trap or drained           *)
(* deadlock), or if the balanced allocation serves fewer critical-      *)
(* thread packets than the spilling baseline under saturation.          *)

type mix = { mix_name : string; mix_ids : string list; critical : int }

(* The Table-3 scenarios; [critical] is the register-starved thread the
   paper speeds up (md5, md5, wraps_tx). *)
let throughput_mixes =
  [
    { mix_name = "S1"; critical = 0;
      mix_ids = [ "md5"; "md5"; "fir2dim"; "fir2dim" ] };
    { mix_name = "S2"; critical = 2;
      mix_ids = [ "l2l3fwd_rx"; "l2l3fwd_tx"; "md5"; "md5" ] };
    { mix_name = "S3"; critical = 1;
      mix_ids = [ "wraps_rx"; "wraps_tx"; "fir2dim"; "frag" ] };
  ]

type mix_result = {
  r_mix : mix;
  r_provenance : Npra_core.Pipeline.stage;
  r_duration : int;
  r_pressure_fixed : Npra_traffic.Metrics.run_metrics;
  r_pressure_bal : Npra_traffic.Metrics.run_metrics;
  r_offered_fixed : Npra_traffic.Metrics.run_metrics;
  r_offered_bal : Npra_traffic.Metrics.run_metrics;
}

let ts_of r i = List.nth (Npra_traffic.Metrics.thread_summaries r) i
let served_of r i = (ts_of r i).Npra_traffic.Metrics.ts_served
let service_of r i = (ts_of r i).Npra_traffic.Metrics.ts_mean_service

(* Throughput change of thread [i], balanced over fixed, in percent
   (positive = balanced serves more packets). *)
let change_pct fixed bal i =
  let b = served_of fixed i and s = served_of bal i in
  if b = 0 then 0. else 100. *. ((float_of_int s /. float_of_int b) -. 1.)

let service_speedup_pct fixed bal i =
  let b = service_of fixed i and s = service_of bal i in
  if s = 0. then 0. else 100. *. ((b /. s) -. 1.)

let run_throughput_mix ~pool ~quick ~seed ~engines mix =
  let open Npra_traffic in
  let ws =
    List.mapi
      (fun i id ->
        let tspec =
          match Registry.default_traffic id with
          | Some t -> t
          | None -> Fmt.failwith "no traffic model for workload %S" id
        in
        ( Registry.instantiate (Registry.find_exn id) ~slot:i
            ~iters:tspec.Workload.per_packet_iters,
          tspec ))
      mix.mix_ids
  in
  let progs = List.map (fun (w, _) -> w.Workload.prog) ws in
  let mem_image = List.concat_map (fun (w, _) -> w.Workload.mem_image) ws in
  let spill_bases = List.map (fun (w, _) -> Workload.spill_base w) ws in
  let base, bal = Pipeline.contenders ~pool ~nreg:128 ~spill_bases progs in
  let bal =
    match bal with
    | Ok b -> b
    | Error trail ->
      Fmt.epr "THROUGHPUT FAILURE: %s: every allocation stage failed:@.%a@."
        mix.mix_name
        Fmt.(list ~sep:(any "@.") Pipeline.pp_diagnostic)
        trail;
      exit 1
  in
  (* Solo per-packet service time of each baseline program calibrates
     the saturation regime and the run length — both therefore
     deterministic. *)
  let solo =
    List.map2
      (fun prog (w, _) ->
        let m = Npra_sim.Machine.run ~mem_image:w.Workload.mem_image [ prog ] in
        match
          (List.hd (Npra_sim.Machine.report m).Npra_sim.Machine.thread_reports)
            .Npra_sim.Machine.completion
        with
        | Some c -> max 1 c
        | None -> 1)
      base.Pipeline.base_programs ws
  in
  let max_solo = List.fold_left max 1 solo in
  let duration = (if quick then 25 else 120) * max_solo in
  (* Fresh packet words poked into the thread's input buffer at every
     service start: a pure function of (seed, engine, thread, seq). *)
  let refresh ~engine ~thread ~seq =
    let w, _ = List.nth ws thread in
    List.mapi
      (fun j v -> (Workload.input_base w + j, v))
      (Workload.random_words
         ~seed:(seed + (engine * 65537) + (thread * 257) + (seq * 13) + 1)
         8)
  in
  let run progs specs =
    Dispatch.run ~pool ~engines ~sentinel:`Trap ~refresh ~seed ~duration
      ~specs ~mem_image progs
  in
  (* Saturation: uniform arrivals at twice each thread's solo service
     rate, so queues never run dry and served packets measure service
     speed. Offered: the registry's per-kernel models (uniform, Poisson,
     bursty), the realistic regime for drops and latency tails. *)
  let pressure_specs =
    List.map2
      (fun s (_, t) ->
        { t with Workload.arrival = Workload.Uniform { period = max 1 (s / 2) } })
      solo ws
  in
  let offered_specs = List.map snd ws in
  {
    r_mix = mix;
    r_provenance = bal.Pipeline.provenance;
    r_duration = duration;
    r_pressure_fixed = run base.Pipeline.base_programs pressure_specs;
    r_pressure_bal = run bal.Pipeline.programs pressure_specs;
    r_offered_fixed = run base.Pipeline.base_programs offered_specs;
    r_offered_bal = run bal.Pipeline.programs offered_specs;
  }

let throughput_mix_json r =
  let open Npra_traffic in
  let b = Buffer.create 4096 in
  let add fmt = Fmt.kstr (Buffer.add_string b) fmt in
  let crit = r.r_mix.critical in
  add "    {\n";
  add "      \"mix\": \"%s\",\n" r.r_mix.mix_name;
  add "      \"kernels\": [%s],\n"
    (String.concat ", "
       (List.map (fun id -> Fmt.str "\"%s\"" id) r.r_mix.mix_ids));
  add "      \"critical\": %d,\n" crit;
  add "      \"critical_kernel\": \"%s\",\n" (List.nth r.r_mix.mix_ids crit);
  add "      \"provenance\": \"%s\",\n"
    (Fmt.str "%a" Npra_core.Pipeline.pp_stage r.r_provenance);
  add "      \"duration\": %d,\n" r.r_duration;
  add "      \"critical_speedup_pct\": %.2f,\n"
    (change_pct r.r_pressure_fixed r.r_pressure_bal crit);
  add "      \"critical_service_speedup_pct\": %.2f,\n"
    (service_speedup_pct r.r_pressure_fixed r.r_pressure_bal crit);
  add "      \"coresident_change_pct\": [%s],\n"
    (String.concat ", "
       (List.concat_map
          (fun i ->
            if i = crit then []
            else
              [
                Fmt.str "%.2f"
                  (change_pct r.r_pressure_fixed r.r_pressure_bal i);
              ])
          (List.init (List.length r.r_mix.mix_ids) Fun.id)));
  add "      \"pressure\": {\"fixed\": %s, \"balanced\": %s},\n"
    (Metrics.to_json r.r_pressure_fixed)
    (Metrics.to_json r.r_pressure_bal);
  add "      \"offered\": {\"fixed\": %s, \"balanced\": %s}\n"
    (Metrics.to_json r.r_offered_fixed)
    (Metrics.to_json r.r_offered_bal);
  add "    }";
  Buffer.contents b

let run_throughput (o : Cli.opts) ~json =
  let throughput_json = Option.get json in
  let open Npra_traffic in
  let seed = Option.value o.Cli.seed ~default:1 in
  let engines = if o.Cli.quick then 2 else 3 in
  Fmt.pr
    "@.== Throughput: balanced vs fixed-partition under packet traffic \
     (%d engines, seed %d, %d jobs) ==@."
    engines seed o.Cli.jobs;
  let results, seconds =
    timed (fun () ->
        List.map
          (run_throughput_mix ~pool:(pool o) ~quick:o.Cli.quick ~seed ~engines)
          throughput_mixes)
  in
  Fmt.pr "wall clock: %.3fs at %d jobs@." seconds o.Cli.jobs;
  let ok = ref true in
  List.iter
    (fun r ->
      let crit = r.r_mix.critical in
      Fmt.pr "@.-- %s (%s), critical %s, %d cycles [%a] --@." r.r_mix.mix_name
        (String.concat "+" r.r_mix.mix_ids)
        (List.nth r.r_mix.mix_ids crit)
        r.r_duration Npra_core.Pipeline.pp_stage r.r_provenance;
      Fmt.pr "saturation, fixed partition:@.%a" Metrics.pp r.r_pressure_fixed;
      Fmt.pr "saturation, balanced:@.%a" Metrics.pp r.r_pressure_bal;
      Fmt.pr "offered traffic, fixed partition:@.%a" Metrics.pp
        r.r_offered_fixed;
      Fmt.pr "offered traffic, balanced:@.%a" Metrics.pp r.r_offered_bal;
      Fmt.pr
        "critical thread %s: throughput %+.1f%%, service time speedup \
         %+.1f%% (paper: 18-24%% speedup)@."
        (List.nth r.r_mix.mix_ids crit)
        (change_pct r.r_pressure_fixed r.r_pressure_bal crit)
        (service_speedup_pct r.r_pressure_fixed r.r_pressure_bal crit);
      List.iteri
        (fun i id ->
          if i <> crit then
            Fmt.pr "  co-resident %-12s throughput %+.1f%% (paper: -1..-4%%)@."
              id
              (change_pct r.r_pressure_fixed r.r_pressure_bal i))
        r.r_mix.mix_ids;
      let all_runs =
        [
          ("pressure/fixed", r.r_pressure_fixed);
          ("pressure/balanced", r.r_pressure_bal);
          ("offered/fixed", r.r_offered_fixed);
          ("offered/balanced", r.r_offered_bal);
        ]
      in
      List.iter
        (fun (label, m) ->
          List.iter
            (fun (e, f) ->
              ok := false;
              Fmt.epr "THROUGHPUT FAILURE: %s %s engine %d: %s@."
                r.r_mix.mix_name label e f)
            (Metrics.faults m))
        all_runs;
      if served_of r.r_pressure_bal crit < served_of r.r_pressure_fixed crit
      then begin
        ok := false;
        Fmt.epr
          "THROUGHPUT FAILURE: %s: balanced served fewer critical-thread \
           packets (%d) than the fixed partition (%d) under saturation@."
          r.r_mix.mix_name
          (served_of r.r_pressure_bal crit)
          (served_of r.r_pressure_fixed crit)
      end)
    results;
  let oc = open_out throughput_json in
  let add fmt = Fmt.kstr (output_string oc) fmt in
  add "{\n";
  add "  \"benchmark\": \"throughput\",\n";
  add "  \"seed\": %d,\n" seed;
  add "  \"engines\": %d,\n" engines;
  add "  \"quick\": %b,\n" o.Cli.quick;
  add "  \"mixes\": [\n%s\n  ],\n"
    (String.concat ",\n" (List.map throughput_mix_json results));
  add "  \"ok\": %b,\n" !ok;
  (* The wall_clock block is the only jobs-dependent field; everything
     above it is byte-identical for the same seed at any job count. *)
  add "  %s\n" (wall_clock_json ~jobs:o.Cli.jobs ~seconds);
  add "}\n";
  close_out oc;
  Fmt.pr "@.wrote %s@." throughput_json;
  if not !ok then begin
    Fmt.epr
      "THROUGHPUT HARNESS FAILURE: an engine faulted or the balanced \
       allocator lost critical-thread throughput (see above)@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Portfolio race: the parallel strategy slate vs the sequential       *)
(* fallback chain on every registry kernel. Writes                     *)
(* BENCH_portfolio.json (deterministic payload + wall_clock block) and *)
(* exits non-zero if the portfolio ever scores worse than the chain.   *)

let run_portfolio (o : Cli.opts) ~json =
  let portfolio_json_path = Option.get json in
  let seed = Option.value o.Cli.seed ~default:1 in
  Fmt.pr
    "@.== Portfolio: strategy race vs the fallback chain (seed %d, %d \
     jobs%s) ==@."
    seed o.Cli.jobs
    (if o.Cli.quick then ", quick" else "");
  let rows, seconds =
    timed (fun () ->
        Experiments.portfolio_rows ~pool:(pool o) ~quick:o.Cli.quick ~seed ())
  in
  Report.print (Experiments.portfolio_report rows);
  List.iter
    (fun r ->
      if not r.Experiments.p_never_loses then
        Fmt.epr
          "PORTFOLIO FAILURE: %s: the portfolio winner scores worse than \
           the fallback chain@."
          r.Experiments.p_kernel)
    rows;
  Fmt.pr "wall clock: %.3fs at %d jobs@." seconds o.Cli.jobs;
  let oc = open_out portfolio_json_path in
  output_string oc
    (splice_wall_clock ~jobs:o.Cli.jobs ~seconds
       (Experiments.portfolio_json ~seed ~quick:o.Cli.quick rows));
  close_out oc;
  Fmt.pr "wrote %s@." portfolio_json_path;
  if not (Experiments.portfolio_ok rows) then begin
    Fmt.epr
      "PORTFOLIO HARNESS FAILURE: the never-loses property was violated \
       (see above)@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Chaos matrix: kernel mixes x injected fault schedules through the    *)
(* fabric path of the dispatcher. Writes BENCH_chaos.json and fails     *)
(* the process if any cell aborts, violates exact packet conservation,  *)
(* or delivers below the degradation floor.                             *)

let run_chaos (o : Cli.opts) ~json =
  let chaos_json = Option.get json in
  let seed = Option.value o.Cli.seed ~default:42 in
  Fmt.pr
    "@.== Chaos: engine failure injection, watchdog quarantine, re-dispatch \
     (seed %d, %d jobs%s) ==@."
    seed o.Cli.jobs
    (if o.Cli.quick then ", quick" else "");
  let m, seconds =
    timed (fun () ->
        Npra_fault.Chaosdriver.run ~pool:(pool o) ~seed ~quick:o.Cli.quick ())
  in
  Fmt.pr "%a" Npra_fault.Chaosdriver.pp m;
  Fmt.pr "wall clock: %.3fs at %d jobs@." seconds o.Cli.jobs;
  let oc = open_out chaos_json in
  output_string oc
    (splice_wall_clock ~jobs:o.Cli.jobs ~seconds
       (Npra_fault.Chaosdriver.to_json m));
  close_out oc;
  Fmt.pr "wrote %s@." chaos_json;
  if not (Npra_fault.Chaosdriver.all_ok m) then begin
    Fmt.epr
      "CHAOS HARNESS FAILURE: a cell aborted, lost packets, or delivered \
       below the degradation floor (see the matrix above)@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Adaptive re-allocation: every shifting-traffic scenario run twice    *)
(* (allocation frozen vs the Adapt control loop re-balancing online).   *)
(* Writes BENCH_adapt.json and fails the process if the adaptive run    *)
(* ever serves fewer critical-thread packets than static, breaks the    *)
(* hysteresis bound, or loses packets.                                  *)

let run_adapt (o : Cli.opts) ~json =
  let adapt_json = Option.get json in
  let seed = Option.value o.Cli.seed ~default:42 in
  Fmt.pr
    "@.== Adapt: metrics-driven re-balancing vs a frozen allocation (seed \
     %d, %d jobs%s) ==@."
    seed o.Cli.jobs
    (if o.Cli.quick then ", quick" else "");
  let m, seconds =
    timed (fun () ->
        Npra_fault.Adaptdriver.run ~pool:(pool o) ~seed ~quick:o.Cli.quick ())
  in
  Fmt.pr "%a" Npra_fault.Adaptdriver.pp m;
  Fmt.pr "wall clock: %.3fs at %d jobs@." seconds o.Cli.jobs;
  let oc = open_out adapt_json in
  output_string oc
    (splice_wall_clock ~jobs:o.Cli.jobs ~seconds
       (Npra_fault.Adaptdriver.to_json m));
  close_out oc;
  Fmt.pr "wrote %s@." adapt_json;
  if not (Npra_fault.Adaptdriver.all_ok m) then begin
    Fmt.epr
      "ADAPT HARNESS FAILURE: a cell served below static, exceeded the \
       hysteresis bound, or lost packets (see the matrix above)@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Full-chip fabric: sharded dispatch over the tiered memory hierarchy  *)
(* plus inter-engine rx -> classify -> tx chains. Writes               *)
(* BENCH_chip.json and fails the process on any conservation or SLO     *)
(* violation, or if the balanced allocation serves fewer critical-      *)
(* thread packets than the fixed partition.                             *)

let run_chip (o : Cli.opts) ~json =
  let chip_json = Option.get json in
  let seed = Option.value o.Cli.seed ~default:42 in
  Fmt.pr
    "@.== Chip: sharded dispatch, tiered memory, inter-engine chains (seed \
     %d, %d jobs%s) ==@."
    seed o.Cli.jobs
    (if o.Cli.quick then ", quick" else "");
  let m, seconds =
    timed (fun () ->
        Npra_chip.Driver.run ~pool:(pool o) ~seed ~quick:o.Cli.quick ())
  in
  Fmt.pr "%a" Npra_chip.Driver.pp m;
  Fmt.pr "wall clock: %.3fs at %d jobs@." seconds o.Cli.jobs;
  let oc = open_out chip_json in
  output_string oc
    (splice_wall_clock ~jobs:o.Cli.jobs ~seconds (Npra_chip.Driver.to_json m));
  close_out oc;
  Fmt.pr "wrote %s@." chip_json;
  if not (Npra_chip.Driver.all_ok m) then begin
    Fmt.epr
      "CHIP HARNESS FAILURE: a cell violated conservation, missed its SLO, \
       fell short of the offered floor, or the balanced allocation lost to \
       the fixed partition (see the matrix above)@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)

let () =
  (* The full argument spec lives in {!Cli}; every subcommand declares
     its JSON output (or lack of one) here, so --json resolves against
     the actual selection instead of silently applying to [dataflow]
     only. *)
  let plain name run =
    { Cli.name; json_default = None; run = (fun _ ~json:_ -> run ()) }
  in
  let writes name json_default run =
    { Cli.name; json_default = Some json_default; run }
  in
  let specs =
    [
      plain "table1" run_table1;
      plain "fig14" run_fig14;
      plain "table2" run_table2;
      plain "table3" run_table3;
      plain "ablation" run_ablation;
      plain "timing" run_timing;
      writes "dataflow" "BENCH_dataflow.json" run_dataflow;
      writes "faults" "BENCH_faults.json" run_faults;
      writes "fuzz" "BENCH_fuzz.json" run_fuzz;
      writes "throughput" "BENCH_throughput.json" run_throughput;
      writes "portfolio" "BENCH_portfolio.json" run_portfolio;
      writes "chaos" "BENCH_chaos.json" run_chaos;
      writes "adapt" "BENCH_adapt.json" run_adapt;
      writes "chip" "BENCH_chip.json" run_chip;
      writes "simspeed" "BENCH_simspeed.json" (fun (o : Cli.opts) ~json ->
          Simspeed.run ~quick:o.Cli.quick ~seed:o.Cli.seed ~jobs:o.Cli.jobs
            ~json);
    ]
  in
  let opts, selected = Cli.parse ~specs (List.tl (Array.to_list Sys.argv)) in
  List.iter (fun s -> s.Cli.run opts ~json:(Cli.json_path opts s)) selected
