(* The one argument spec every bench subcommand shares.

   Historically each flag was parsed by hand in [main] and stashed in
   globals, and --json silently applied only to [dataflow]: running
   `bench faults --json x.json` accepted the flag and then ignored it.
   This module owns the spec instead. Every subcommand declares its
   default JSON output path (or that it writes none), the parser
   resolves --json against the actual selection, and a --json that
   cannot take effect is a hard usage error instead of a silent no-op. *)

type opts = {
  quick : bool;  (* tiny quotas and short runs, for CI *)
  seed : int option;  (* replayable seed for the randomised harnesses *)
  jobs : int;  (* worker domains for the pooled harnesses *)
  json_override : string option;  (* --json PATH, validated in [parse] *)
}

let default_opts = { quick = false; seed = None; jobs = 1; json_override = None }

type spec = {
  name : string;
  json_default : string option;  (* None = this subcommand writes no JSON *)
  run : opts -> json:string option -> unit;
}

let usage ppf specs =
  Fmt.pf ppf "subcommands:@.";
  List.iter
    (fun s ->
      Fmt.pf ppf "  %-12s%a@." s.name
        Fmt.(option (fun ppf j -> Fmt.pf ppf "writes %s" j))
        s.json_default)
    specs;
  Fmt.pf ppf
    "flags: [--quick] [--seed N] [--jobs N] [--json PATH (single \
     JSON-writing subcommand only)]@."

let die specs fmt =
  Fmt.kstr
    (fun msg ->
      Fmt.epr "%s@.%a" msg usage specs;
      exit 2)
    fmt

(* [parse ~specs argv] returns the shared options and the selected
   subcommands in command-line order (all of them when none is named).
   Unknown names and unusable --json flags fail fast, before any
   experiment runs. *)
let parse ~specs argv =
  let rec go opts names = function
    | [] -> (opts, List.rev names)
    | "--json" :: path :: rest ->
      go { opts with json_override = Some path } names rest
    | [ "--json" ] -> die specs "--json needs a path argument"
    | "--quick" :: rest -> go { opts with quick = true } names rest
    | "--seed" :: n :: rest -> (
      match int_of_string_opt n with
      | Some s -> go { opts with seed = Some s } names rest
      | None -> die specs "--seed needs an integer argument, got %S" n)
    | [ "--seed" ] -> die specs "--seed needs an integer argument"
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 -> go { opts with jobs = j } names rest
      | _ -> die specs "--jobs needs a positive integer argument, got %S" n)
    | [ "--jobs" ] -> die specs "--jobs needs a positive integer argument"
    | name :: rest -> go opts (name :: names) rest
  in
  let opts, names = go default_opts [] argv in
  let selected =
    match names with
    | [] -> specs
    | names ->
      List.map
        (fun name ->
          match List.find_opt (fun s -> s.name = name) specs with
          | Some s -> s
          | None -> die specs "unknown subcommand %S" name)
        names
  in
  (match opts.json_override with
  | None -> ()
  | Some path -> (
    match List.filter (fun s -> s.json_default <> None) selected with
    | [ _ ] -> ()
    | [] ->
      die specs "--json %s: %s no JSON report; the flag would be ignored"
        path
        (match selected with
        | [ s ] -> Fmt.str "subcommand %S writes" s.name
        | _ -> "the selected subcommands write")
    | many ->
      die specs
        "--json %s is ambiguous: subcommands %s all write JSON; select \
         exactly one"
        path
        (String.concat ", " (List.map (fun s -> s.name) many))));
  (opts, selected)

(* The JSON path a subcommand should write to under [opts]: its default,
   overridden by --json when [parse] proved the override unambiguous. *)
let json_path opts spec =
  match spec.json_default with
  | None -> None
  | Some d -> Some (Option.value opts.json_override ~default:d)
