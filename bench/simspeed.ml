(* bench simspeed: how fast does the simulator simulate?

   Two guarded measurements, written to BENCH_simspeed.json.

   Engine sweep — every registry kernel as a balanced four-thread
   system, run to completion repeatedly under each engine variant
   (legacy, decoded, soa) with the sentinel off, so the soa burst loop
   actually engages. The figure of merit is simulated cycles per wall
   second; the deterministic cycle count per run is read off a first
   run and cross-checked across engines, so the rate is anchored to the
   machine model, not to repetitions.

   Pool matrix — a matrix of chip cells at different scales run through
   {!Npra_chip.Shard} under both pool strategies (asserting the
   byte-identical contract as it goes), then the per-shard busy-cycle
   costs replayed through {!Npra_par.Pool.plan} at jobs 1/2/4. On the
   single-core CI hosts this repo actually runs on, wall clock cannot
   show a scheduling win, so the guarded figure is the virtual-time
   makespan ratio (fixed over steal) — deterministic on any host — and
   the wall clocks are reported as observations only.

   Floors (exit 1 below any): the makespan ratio at jobs 4 in every
   mode; in full mode also the sweep-wide soa/decoded rate ratio and an
   absolute soa cycles/sec floor. Quick mode only sanity-checks that
   soa does not lose to decoded overall, because its quotas are too
   short to defend a 2x claim against CI noise. *)

open Npra_workloads
open Npra_core
module Machine = Npra_sim.Machine
module Pool = Npra_par.Pool
module Shard = Npra_chip.Shard
module Metrics = Npra_traffic.Metrics

(* ---- floors: the committed claims CI holds this file to ---- *)

let floor_soa_over_decoded = 2.0 (* full-mode sweep ratio *)
let floor_soa_over_decoded_quick = 1.0 (* quick-mode sanity bound *)
let floor_soa_cps = 2_000_000. (* absolute soa sweep rate, full mode *)
let floor_pool_ratio_jobs4 = 1.2 (* fixed/steal makespan, every mode *)

(* ------------------------------------------------------------------ *)
(* Engine sweep.                                                       *)

type kernel_speed = {
  k_name : string;
  k_cycles : int;  (* deterministic simulated cycles of one system run *)
  k_legacy : float;  (* cycles per second *)
  k_decoded : float;
  k_soa : float;
}

let kernel_system spec =
  let ws = List.init 4 (fun slot -> Registry.instantiate spec ~slot) in
  let progs = List.map (fun w -> w.Workload.prog) ws in
  let mem_image = List.concat_map (fun w -> w.Workload.mem_image) ws in
  let spill_bases = List.map Workload.spill_base ws in
  let bal = Pipeline.balanced_exn ~nreg:128 ~spill_bases progs in
  (bal.Pipeline.programs, mem_image)

(* Repeat [run] — which returns the seconds its timed region took —
   until [min_s] of measured time accumulates, then report the
   simulation rate. The first (cycle-counting) run warms every cache. *)
let cps ~min_s ~cycles run =
  let reps = ref 0 in
  let spent = ref 0. in
  while !spent < min_s do
    spent := !spent +. run ();
    incr reps
  done;
  float_of_int (cycles * !reps) /. !spent

(* One rep: a fresh machine driven to completion, with construction
   (program decode, row concatenation) outside the timed region. That
   is the steady-state rate the traffic layer actually sees — a
   dispatcher builds each engine's machine once and then drives it
   through thousands of [run_until] slices — and it is the figure the
   engine comparison is about: how fast an engine executes cycles, not
   how fast programs decode. *)
let measure_kernel ~quick spec =
  let progs, mem_image = kernel_system spec in
  let run engine () =
    let m = Machine.create ~engine ~sentinel:`Off ~mem_image progs in
    let t0 = Unix.gettimeofday () in
    (match Machine.run_until m ~horizon:1_000_000_000 with
    | `Idle | `Horizon | `Halted _ -> ());
    Unix.gettimeofday () -. t0
  in
  let cycles engine =
    (Machine.report (Machine.run ~engine ~sentinel:`Off ~mem_image progs))
      .Machine.total_cycles
  in
  let c = cycles `Soa in
  List.iter
    (fun engine ->
      if cycles engine <> c then
        Fmt.failwith "simspeed: engine cycle counts diverge on %s"
          spec.Workload.id)
    [ `Decoded; `Legacy ];
  let min_s = if quick then 0.02 else 0.25 in
  {
    k_name = spec.Workload.id;
    k_cycles = c;
    k_legacy = cps ~min_s ~cycles:c (run `Legacy);
    k_decoded = cps ~min_s ~cycles:c (run `Decoded);
    k_soa = cps ~min_s ~cycles:c (run `Soa);
  }

(* Sweep-wide rate of one engine: total cycles over the time it takes
   to simulate every kernel once at its measured per-kernel rate — the
   cycle-weighted harmonic mean, so no kernel's rate is over-counted. *)
let sweep_cps kernels rate_of =
  let cycles =
    List.fold_left (fun a k -> a +. float_of_int k.k_cycles) 0. kernels
  in
  let seconds =
    List.fold_left
      (fun a k -> a +. (float_of_int k.k_cycles /. rate_of k))
      0. kernels
  in
  cycles /. seconds

(* ------------------------------------------------------------------ *)
(* Pool matrix.                                                        *)

type cell = { cl_engines : int; cl_shards : int; cl_duration : int }

(* Cells at deliberately different scales: the spread hash deals each
   cell's engines unevenly across its shards, and mixing small and
   large cells gives the task vector the cost spread that makes a
   static block deal pay for its worst block. *)
let cells ~quick =
  if quick then
    [
      { cl_engines = 6; cl_shards = 2; cl_duration = 1_200 };
      { cl_engines = 16; cl_shards = 4; cl_duration = 1_200 };
      { cl_engines = 40; cl_shards = 8; cl_duration = 2_400 };
    ]
  else
    [
      { cl_engines = 8; cl_shards = 2; cl_duration = 3_000 };
      { cl_engines = 24; cl_shards = 6; cl_duration = 3_000 };
      { cl_engines = 64; cl_shards = 8; cl_duration = 6_000 };
    ]

let shard_system () =
  let ws =
    List.mapi
      (fun i id -> Registry.instantiate (Registry.find_exn id) ~slot:i ~iters:2)
      [ "crc32"; "frag" ]
  in
  let progs = List.map (fun w -> w.Workload.prog) ws in
  let mem_image = List.concat_map (fun w -> w.Workload.mem_image) ws in
  let spill_bases = List.map Workload.spill_base ws in
  let bal = Pipeline.balanced_exn ~nreg:128 ~spill_bases progs in
  let specs =
    List.init 2 (fun _ ->
        {
          Workload.arrival = Workload.Uniform { period = 200 };
          queue_capacity = 4;
          per_packet_iters = 2;
        })
  in
  (bal.Pipeline.programs, mem_image, specs)

let run_matrix ~pool ~seed ~cells =
  let progs, mem_image, specs = shard_system () in
  List.map
    (fun c ->
      Shard.run ~pool ~seed ~engines:c.cl_engines ~shards:c.cl_shards
        ~duration:c.cl_duration ~specs ~mem_image progs)
    cells

(* The virtual cost of one shard task: the busy cycles its engines
   executed — deterministic, and proportional to the work the pool
   worker that claims the shard actually does. *)
let shard_cost r =
  List.fold_left
    (fun a e -> a + e.Metrics.em_report.Machine.busy_cycles)
    0 r.Shard.sr_metrics.Metrics.rm_engines

let matrix_costs runs =
  Array.of_list
    (List.concat_map (fun chip -> List.map shard_cost chip.Shard.c_runs) runs)

type makespans = {
  mk_jobs : int;
  mk_fixed : int;
  mk_steal : int;
  mk_steals : int;  (* steals the replay performed *)
}

let makespans ~costs jobs =
  let fixed = Pool.plan ~strategy:`Fixed ~jobs ~costs in
  let steal = Pool.plan ~strategy:`Steal ~jobs ~costs in
  {
    mk_jobs = jobs;
    mk_fixed = fixed.Pool.p_makespan;
    mk_steal = steal.Pool.p_makespan;
    mk_steals = steal.Pool.p_steals;
  }

let ratio m = float_of_int m.mk_fixed /. float_of_int (max 1 m.mk_steal)

(* ------------------------------------------------------------------ *)

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let run ~quick ~seed ~jobs ~json =
  let seed = Option.value seed ~default:42 in
  Fmt.pr
    "@.== Simspeed: engine variants + work-stealing pool model (seed %d, %d \
     jobs%s) ==@."
    seed jobs
    (if quick then ", quick" else "");
  let t0 = Unix.gettimeofday () in
  (* engine sweep *)
  Fmt.pr "%-12s %10s %14s %14s %14s %8s@." "kernel" "cycles" "legacy c/s"
    "decoded c/s" "soa c/s" "soa/dec";
  let kernels =
    List.map
      (fun spec ->
        let k = measure_kernel ~quick spec in
        Fmt.pr "%-12s %10d %14.0f %14.0f %14.0f %7.2fx@." k.k_name k.k_cycles
          k.k_legacy k.k_decoded k.k_soa (k.k_soa /. k.k_decoded);
        k)
      Registry.all
  in
  let s_legacy = sweep_cps kernels (fun k -> k.k_legacy) in
  let s_decoded = sweep_cps kernels (fun k -> k.k_decoded) in
  let s_soa = sweep_cps kernels (fun k -> k.k_soa) in
  let soa_over_decoded = s_soa /. s_decoded in
  Fmt.pr "%-12s %10s %14.0f %14.0f %14.0f %7.2fx@." "sweep" "-" s_legacy
    s_decoded s_soa soa_over_decoded;
  (* pool matrix: both strategies must agree byte for byte *)
  let cells = cells ~quick in
  let fixed_runs, wall_fixed =
    timed (fun () ->
        run_matrix ~pool:(Pool.create ~jobs ~strategy:`Fixed ()) ~seed ~cells)
  in
  let steal_runs, wall_steal =
    timed (fun () ->
        run_matrix ~pool:(Pool.create ~jobs ~strategy:`Steal ()) ~seed ~cells)
  in
  let identical =
    List.for_all2
      (fun a b -> String.equal (Shard.to_json a) (Shard.to_json b))
      fixed_runs steal_runs
  in
  if not identical then
    Fmt.epr
      "SIMSPEED FAILURE: shard matrix differs between fixed and stealing \
       pools@.";
  let costs = matrix_costs steal_runs in
  let plans = List.map (makespans ~costs) [ 1; 2; 4 ] in
  Fmt.pr "@.pool model over %d shard tasks (costs %d..%d busy-cycles):@."
    (Array.length costs)
    (Array.fold_left min max_int costs)
    (Array.fold_left max 0 costs);
  List.iter
    (fun m ->
      Fmt.pr
        "  jobs %d: fixed makespan %9d, steal makespan %9d  (%.2fx, %d \
         steals)@."
        m.mk_jobs m.mk_fixed m.mk_steal (ratio m) m.mk_steals)
    plans;
  Fmt.pr "  matrix wall clock at %d jobs: fixed %.3fs, steal %.3fs@." jobs
    wall_fixed wall_steal;
  let jobs4 = List.nth plans 2 in
  (* floors *)
  let ratio_floor = if quick then floor_soa_over_decoded_quick else floor_soa_over_decoded in
  let ok_engine = soa_over_decoded >= ratio_floor in
  let ok_abs = quick || s_soa >= floor_soa_cps in
  let ok_pool = ratio jobs4 >= floor_pool_ratio_jobs4 in
  if not ok_engine then
    Fmt.epr "SIMSPEED FAILURE: soa/decoded sweep ratio %.2f below floor %.2f@."
      soa_over_decoded ratio_floor;
  if not ok_abs then
    Fmt.epr "SIMSPEED FAILURE: soa sweep rate %.0f c/s below floor %.0f@."
      s_soa floor_soa_cps;
  if not ok_pool then
    Fmt.epr
      "SIMSPEED FAILURE: fixed/steal makespan ratio %.2f at jobs 4 below \
       floor %.2f@."
      (ratio jobs4) floor_pool_ratio_jobs4;
  let ok = ok_engine && ok_abs && ok_pool && identical in
  (* JSON *)
  let seconds = Unix.gettimeofday () -. t0 in
  (match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let add fmt = Fmt.kstr (output_string oc) fmt in
    add "{\n";
    add "  \"benchmark\": \"simspeed\",\n";
    add "  \"quick\": %b,\n" quick;
    add "  \"seed\": %d,\n" seed;
    add "  \"engines\": {\n";
    add "    \"kernels\": [\n%s\n    ],\n"
      (String.concat ",\n"
         (List.map
            (fun k ->
              Fmt.str
                {|      {"name": "%s", "cycles": %d, "legacy_cps": %.0f, "decoded_cps": %.0f, "soa_cps": %.0f, "soa_over_decoded": %.3f}|}
                k.k_name k.k_cycles k.k_legacy k.k_decoded k.k_soa
                (k.k_soa /. k.k_decoded))
            kernels));
    add
      "    \"sweep\": {\"legacy_cps\": %.0f, \"decoded_cps\": %.0f, \
       \"soa_cps\": %.0f, \"soa_over_decoded\": %.3f, \"soa_over_legacy\": \
       %.3f}\n"
      s_legacy s_decoded s_soa soa_over_decoded (s_soa /. s_legacy);
    add "  },\n";
    add "  \"pool\": {\n";
    add "    \"cells\": [%s],\n"
      (String.concat ", "
         (List.map
            (fun c ->
              Fmt.str
                {|{"engines": %d, "shards": %d, "duration": %d}|}
                c.cl_engines c.cl_shards c.cl_duration)
            cells));
    add "    \"costs\": [%s],\n"
      (String.concat ", "
         (Array.to_list (Array.map string_of_int costs)));
    add "    \"makespan\": {%s},\n"
      (String.concat ", "
         (List.map
            (fun m ->
              Fmt.str
                {|"jobs%d": {"fixed": %d, "steal": %d, "ratio": %.3f, "steals": %d}|}
                m.mk_jobs m.mk_fixed m.mk_steal (ratio m) m.mk_steals)
            plans));
    add "    \"identical_at_fixed_and_steal\": %b,\n" identical;
    add "    \"wall_clock_fixed_s\": %.3f,\n" wall_fixed;
    add "    \"wall_clock_steal_s\": %.3f\n" wall_steal;
    add "  },\n";
    add
      "  \"floors\": {\"soa_over_decoded_min\": %.2f, \"soa_cps_min\": %.0f, \
       \"pool_ratio_jobs4_min\": %.2f, \"enforced_engine_floors\": %b},\n"
      ratio_floor floor_soa_cps floor_pool_ratio_jobs4 (not quick);
    add "  \"ok\": %b,\n" ok;
    add "  \"wall_clock\": {\"jobs\": %d, \"seconds\": %.3f}\n" jobs seconds;
    add "}\n";
    close_out oc;
    Fmt.pr "wrote %s@." path);
  if not ok then begin
    Fmt.epr
      "SIMSPEED HARNESS FAILURE: an engine or pool floor was missed (see \
       above)@.";
    exit 1
  end
